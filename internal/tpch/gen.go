package tpch

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/types"
)

// Dataset is a loaded TPC-H database at one scale factor.
type Dataset struct {
	SF float64
	DB *engine.DB

	Lineitem, Orders, Customer, Supplier *storage.Table
	Part, Partsupp, Nation, Region       *storage.Table
}

// rng is a splitmix64 stream. Every row derives its own stream from (table,
// key) so the data is deterministic and independent of generation order.
type rng struct{ s uint64 }

func newRNG(parts ...uint64) *rng {
	s := uint64(0x9e3779b97f4a7c15)
	for _, p := range parts {
		s = types.Mix64(s ^ p)
	}
	return &rng{s: s}
}

func (r *rng) u64() uint64 {
	r.s += 0x9e3779b97f4a7c15
	return types.Mix64(r.s)
}

func (r *rng) intn(n int) int { return int(r.u64() % uint64(n)) }

// rangeInt returns a uniform integer in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// money returns a uniform 2-decimal value in [lo, hi].
func (r *rng) money(lo, hi int) float64 {
	return float64(r.rangeInt(lo*100, hi*100)) / 100
}

func (r *rng) pick(list []string) string { return list[r.intn(len(list))] }

func (r *rng) text(maxWords int) string {
	n := r.rangeInt(2, maxWords)
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += r.pick(words)
	}
	return out
}

// TPC-H reference dates.
var (
	startDate   = types.ToDays(1992, 1, 1)
	endDate     = types.ToDays(1998, 8, 2) // 1998-12-01 minus ~121 days
	currentDate = types.ToDays(1995, 6, 17)
)

const genSeed = 0x7c9

// Load generates and loads all eight tables at scale factor sf into a fresh
// database with the given base-table block size and format.
func Load(sf float64, blockBytes int, format storage.Format) *Dataset {
	db := engine.NewDB(blockBytes, format)
	d := &Dataset{SF: sf, DB: db}
	d.genRegion()
	d.genNation()
	d.genSupplier()
	d.genPartAndPartsupp()
	d.genCustomer()
	d.genOrdersAndLineitem()
	return d
}

func scale(sf float64, base int) int {
	n := int(sf * float64(base))
	if n < 1 {
		n = 1
	}
	return n
}

func (d *Dataset) genRegion() {
	d.Region = d.DB.CreateTable("region", RegionSchema)
	l := storage.NewLoader(d.Region)
	for i, name := range regions {
		r := newRNG(genSeed, 1, uint64(i))
		l.Append(types.NewInt64(int64(i)), types.NewString(name), types.NewString(r.text(6)))
	}
	l.Close()
}

func (d *Dataset) genNation() {
	d.Nation = d.DB.CreateTable("nation", NationSchema)
	l := storage.NewLoader(d.Nation)
	for i, n := range nations {
		r := newRNG(genSeed, 2, uint64(i))
		l.Append(types.NewInt64(int64(i)), types.NewString(n.name),
			types.NewInt64(n.region), types.NewString(r.text(6)))
	}
	l.Close()
}

func phone(r *rng, nationkey int64) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", nationkey+10,
		r.rangeInt(100, 999), r.rangeInt(100, 999), r.rangeInt(1000, 9999))
}

func (d *Dataset) numSuppliers() int { return scale(d.SF, suppliersPerSF) }
func (d *Dataset) numParts() int     { return scale(d.SF, partsPerSF) }
func (d *Dataset) numCustomers() int { return scale(d.SF, customersPerSF) }
func (d *Dataset) numOrders() int    { return scale(d.SF, customersPerSF*ordersPerCust) }

func (d *Dataset) genSupplier() {
	d.Supplier = d.DB.CreateTable("supplier", SupplierSchema)
	l := storage.NewLoader(d.Supplier)
	for k := 1; k <= d.numSuppliers(); k++ {
		r := newRNG(genSeed, 3, uint64(k))
		nk := int64(r.intn(len(nations)))
		comment := r.text(6)
		// dbgen plants 'Customer ... Complaints' in a small fraction of
		// supplier comments (the Q16 NOT IN subquery population).
		if r.intn(100) == 0 {
			comment = "Customer " + r.pick(words) + " Complaints" // fits CHAR(44)
		}
		l.Append(
			types.NewInt64(int64(k)),
			types.NewString(fmt.Sprintf("Supplier#%09d", k)),
			types.NewString(r.text(4)),
			types.NewInt64(nk),
			types.NewString(phone(r, nk)),
			types.NewFloat64(r.money(-999, 9999)),
			types.NewString(comment),
		)
	}
	l.Close()
}

// partPrice is dbgen's retail price function: deterministic in the part key,
// so lineitem prices can be derived without a lookup.
func partPrice(partkey int64) float64 {
	return float64(90000+((partkey/10)%20001)+100*(partkey%1000)) / 100
}

func (d *Dataset) genPartAndPartsupp() {
	d.Part = d.DB.CreateTable("part", PartSchema)
	d.Partsupp = d.DB.CreateTable("partsupp", PartsuppSchema)
	lp := storage.NewLoader(d.Part)
	ls := storage.NewLoader(d.Partsupp)
	nSupp := int64(d.numSuppliers())
	nPart := d.numParts()
	for k := 1; k <= nPart; k++ {
		r := newRNG(genSeed, 4, uint64(k))
		name := r.pick(colors) + " " + r.pick(colors) + " " + r.pick(colors)
		brand := fmt.Sprintf("Brand#%d%d", r.rangeInt(1, 5), r.rangeInt(1, 5))
		ptype := r.pick(types1) + " " + r.pick(types2) + " " + r.pick(types3)
		l := int64(k)
		lp.Append(
			types.NewInt64(l),
			types.NewString(name),
			types.NewString(fmt.Sprintf("Manufacturer#%d", r.rangeInt(1, 5))),
			types.NewString(brand),
			types.NewString(ptype),
			types.NewInt64(int64(r.rangeInt(1, 50))),
			types.NewString(r.pick(containers1)+" "+r.pick(containers2)),
			types.NewFloat64(partPrice(l)),
			types.NewString(r.pick(words)),
		)
		for i := int64(0); i < suppsPerPart; i++ {
			sk := (l+i*(nSupp/suppsPerPart+1))%nSupp + 1
			ls.Append(
				types.NewInt64(l),
				types.NewInt64(sk),
				types.NewInt64(int64(r.rangeInt(1, 9999))),
				types.NewFloat64(r.money(1, 1000)),
				types.NewString(r.text(7)),
			)
		}
	}
	lp.Close()
	ls.Close()
}

func (d *Dataset) genCustomer() {
	d.Customer = d.DB.CreateTable("customer", CustomerSchema)
	l := storage.NewLoader(d.Customer)
	for k := 1; k <= d.numCustomers(); k++ {
		r := newRNG(genSeed, 5, uint64(k))
		nk := int64(r.intn(len(nations)))
		l.Append(
			types.NewInt64(int64(k)),
			types.NewString(fmt.Sprintf("Customer#%09d", k)),
			types.NewString(r.text(4)),
			types.NewInt64(nk),
			types.NewString(phone(r, nk)),
			types.NewFloat64(r.money(-999, 9999)),
			types.NewString(r.pick(segments)),
			types.NewString(r.text(7)),
		)
	}
	l.Close()
}

func (d *Dataset) genOrdersAndLineitem() {
	d.Orders = d.DB.CreateTable("orders", OrdersSchema)
	d.Lineitem = d.DB.CreateTable("lineitem", LineitemSchema)
	lo := storage.NewLoader(d.Orders)
	ll := storage.NewLoader(d.Lineitem)
	nCust := d.numCustomers()
	nPart := d.numParts()
	nSupp := d.numSuppliers()

	for ok := 1; ok <= d.numOrders(); ok++ {
		r := newRNG(genSeed, 6, uint64(ok))
		orderdate := int32(int(startDate) + r.intn(int(endDate-startDate)+1))
		nLines := r.rangeInt(1, 7)
		total := 0.0
		allF, allO := true, true
		for ln := 1; ln <= nLines; ln++ {
			partkey := int64(r.rangeInt(1, nPart))
			suppkey := int64(r.rangeInt(1, nSupp))
			qty := float64(r.rangeInt(1, 50))
			extprice := qty * partPrice(partkey)
			discount := float64(r.rangeInt(0, 10)) / 100
			tax := float64(r.rangeInt(0, 8)) / 100
			shipdate := orderdate + int32(r.rangeInt(1, 121))
			commitdate := orderdate + int32(r.rangeInt(30, 90))
			receiptdate := shipdate + int32(r.rangeInt(1, 30))
			var returnflag string
			if receiptdate <= currentDate {
				if r.intn(2) == 0 {
					returnflag = "R"
				} else {
					returnflag = "A"
				}
			} else {
				returnflag = "N"
			}
			linestatus := "F"
			if shipdate > currentDate {
				linestatus = "O"
				allF = false
			} else {
				allO = false
			}
			total += extprice * (1 + tax) * (1 - discount)
			ll.Append(
				types.NewInt64(int64(ok)),
				types.NewInt64(partkey),
				types.NewInt64(suppkey),
				types.NewInt64(int64(ln)),
				types.NewFloat64(qty),
				types.NewFloat64(extprice),
				types.NewFloat64(discount),
				types.NewFloat64(tax),
				types.NewString(returnflag),
				types.NewString(linestatus),
				types.NewDate(shipdate),
				types.NewDate(commitdate),
				types.NewDate(receiptdate),
				types.NewString(r.pick(shipinstructs)),
				types.NewString(r.pick(shipmodes)),
				types.NewString(r.text(6)),
			)
		}
		status := "P"
		if allF {
			status = "F"
		} else if allO {
			status = "O"
		}
		comment := r.text(6)
		// ~1.5% of order comments contain the Q13 'special ... requests'
		// pattern (dbgen plants similar phrases).
		if r.intn(64) == 0 {
			comment = r.pick(words) + " special " + r.pick(words) + " requests " + r.pick(words)
		}
		// dbgen never assigns orders to customers whose key is a
		// multiple of 3, so a third of customers stay order-less (Q13's
		// zero bucket, Q22's anti-join population).
		custkey := r.rangeInt(1, nCust)
		for nCust >= 3 && custkey%3 == 0 {
			custkey = r.rangeInt(1, nCust)
		}
		lo.Append(
			types.NewInt64(int64(ok)),
			types.NewInt64(int64(custkey)),
			types.NewString(status),
			types.NewFloat64(total),
			types.NewDate(orderdate),
			types.NewString(r.pick(priorities)),
			types.NewString(fmt.Sprintf("Clerk#%09d", r.rangeInt(1, 1000))),
			types.NewInt64(0),
			types.NewString(comment),
		)
	}
	lo.Close()
	ll.Close()
}

// Table returns a table by TPC-H name.
func (d *Dataset) Table(name string) *storage.Table { return d.DB.Catalog.MustGet(name) }
