package tpch

import (
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
)

func init() {
	register(2, q02)
	register(9, q09)
	register(11, q11)
	register(12, q12)
	register(16, q16)
	register(17, q17)
	register(18, q18)
	register(20, q20)
}

// europeanSuppliers wires region(EUROPE)⋉nation⋉supplier and returns the
// stream of European suppliers with the requested columns.
func europeanSuppliers(b *engine.Builder, d *Dataset, cols ...string) *engine.Node {
	selReg := scan(b, d.Region,
		expr.Eq(expr.C(d.Region.Schema(), "r_name"), expr.Str("EUROPE")), "r_regionkey")
	buildR, _ := b.Build(selReg, exec.BuildSpec{
		Name: "build(region)", KeyCols: idx(selReg, "r_regionkey"), ExpectedRows: 1,
	})
	selNat := scan(b, d.Nation, nil, append([]string{"n_regionkey", "n_nationkey"}, natCols(cols)...)...)
	natEU := b.Probe(selNat, buildR, exec.ProbeSpec{
		Name: "probe(region)", KeyCols: idx(selNat, "n_regionkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selNat, append([]string{"n_nationkey"}, natCols(cols)...)...),
	})
	buildN, _ := b.Build(natEU, exec.BuildSpec{
		Name: "build(nation_eu)", KeyCols: idx(natEU, "n_nationkey"),
		Payload: idx(natEU, natCols(cols)...), ExpectedRows: 5,
	})
	suppCols := append([]string{"s_nationkey"}, suppColsOf(cols)...)
	selSupp := scan(b, d.Supplier, nil, suppCols...)
	return b.Probe(selSupp, buildN, exec.ProbeSpec{
		Name: "probe(nation_eu)", KeyCols: idx(selSupp, "s_nationkey"),
		ProbeProj: idx(selSupp, suppColsOf(cols)...),
		BuildProj: seq(len(natCols(cols))),
	})
}

func natCols(cols []string) []string {
	var out []string
	for _, c := range cols {
		if len(c) > 2 && c[:2] == "n_" {
			out = append(out, c)
		}
	}
	return out
}

func suppColsOf(cols []string) []string {
	var out []string
	for _, c := range cols {
		if len(c) > 2 && c[:2] == "s_" {
			out = append(out, c)
		}
	}
	return out
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// q02: minimum cost supplier — the correlated MIN subquery decorrelates into
// a per-part minimum over European partsupp offers, joined back with a
// supplycost-equality residual.
func q02(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	euro := europeanSuppliers(b, d,
		"s_suppkey", "s_name", "s_address", "s_phone", "s_acctbal", "s_comment", "n_name")

	// Two hash tables over the same supplier stream: existence for the
	// subquery's semi join, attributes for the outer join.
	buildSK, _ := b.Build(euro, exec.BuildSpec{
		Name: "build(supp_keys)", KeyCols: idx(euro, "s_suppkey"),
		ExpectedRows: d.numSuppliers() / 4,
	})
	buildSA, _ := b.Build(euro, exec.BuildSpec{
		Name:         "build(supp_attrs)",
		KeyCols:      idx(euro, "s_suppkey"),
		Payload:      idx(euro, "s_name", "s_address", "s_phone", "s_acctbal", "s_comment", "n_name"),
		ExpectedRows: d.numSuppliers() / 4,
	})

	// Subquery: min supplycost per part among European suppliers.
	pss := d.Partsupp.Schema()
	selPS1 := scan(b, d.Partsupp, nil, "ps_suppkey", "ps_partkey", "ps_supplycost")
	_ = pss
	psEU := b.Probe(selPS1, buildSK, exec.ProbeSpec{
		Name: "probe(supp_keys)", KeyCols: idx(selPS1, "ps_suppkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selPS1, "ps_partkey", "ps_supplycost"),
	})
	minCost := b.Agg(psEU, exec.AggOpSpec{
		Name:         "agg(min_cost)",
		GroupBy:      []expr.Expr{expr.C(psEU.Schema, "ps_partkey")},
		GroupByNames: []string{"ps_partkey"},
		Aggs: []exec.AggSpec{
			{Func: exec.Min, Arg: expr.C(psEU.Schema, "ps_supplycost"), Name: "min_cost"},
		},
	})
	buildMC, buildMCOp := b.Build(minCost, exec.BuildSpec{
		Name: "build(min_cost)", KeyCols: idx(minCost, "ps_partkey"),
		Payload: idx(minCost, "min_cost"), ExpectedRows: d.numParts(),
	})

	// Outer query: brass parts of size 15 joined to the cheapest offers.
	ps0 := d.Part.Schema()
	selPart := scan(b, d.Part,
		expr.And(
			expr.Eq(expr.C(ps0, "p_size"), expr.Int(15)),
			expr.Like(expr.C(ps0, "p_type"), "%BRASS"),
		),
		"p_partkey", "p_mfgr")
	buildP, _ := b.Build(selPart, exec.BuildSpec{
		Name: "build(part)", KeyCols: idx(selPart, "p_partkey"),
		Payload: idx(selPart, "p_mfgr"), ExpectedRows: d.numParts() / 200,
	})

	selPS2 := scan(b, d.Partsupp, nil, "ps_partkey", "ps_suppkey", "ps_supplycost")
	psPart := b.Probe(selPS2, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(selPS2, "ps_partkey"),
		ProbeProj: idx(selPS2, "ps_partkey", "ps_suppkey", "ps_supplycost"),
		BuildProj: []int{0},
	})
	cheapest := b.Probe(psPart, buildMC, exec.ProbeSpec{
		Name: "probe(min_cost)", KeyCols: idx(psPart, "ps_partkey"),
		Residual: expr.Eq(expr.C(psPart.Schema, "ps_supplycost"),
			expr.C2(buildMCOp.PayloadSchema(), "min_cost")),
		ProbeProj: idx(psPart, "ps_partkey", "ps_suppkey", "p_mfgr"),
	})
	withSupp := b.Probe(cheapest, buildSA, exec.ProbeSpec{
		Name: "probe(supp_attrs)", KeyCols: idx(cheapest, "ps_suppkey"),
		ProbeProj: idx(cheapest, "ps_partkey", "p_mfgr"),
		BuildProj: []int{0, 1, 2, 3, 4, 5},
	})
	srt := b.Sort(withSupp, exec.SortSpec{Name: "sort(q2)", Limit: 100, Terms: []exec.SortTerm{
		{Key: expr.C(withSupp.Schema, "s_acctbal"), Desc: true},
		{Key: expr.C(withSupp.Schema, "n_name")},
		{Key: expr.C(withSupp.Schema, "s_name")},
		{Key: expr.C(withSupp.Schema, "ps_partkey")},
	}})
	b.Collect(srt)
	return b
}

// q09: product type profit — a five-way join with a composite-key partsupp
// lookup and a profit expression mixing both sides.
func q09(d *Dataset, o QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	ps0 := d.Part.Schema()
	selPart := scan(b, d.Part, expr.Like(expr.C(ps0, "p_name"), "%green%"), "p_partkey")
	buildP, buildPOp := b.Build(selPart, exec.BuildSpec{
		Name: "build(part)", KeyCols: idx(selPart, "p_partkey"),
		ExpectedRows: d.numParts() / 20, BuildBloom: o.LIP,
	})

	selPS := scan(b, d.Partsupp, nil, "ps_partkey", "ps_suppkey", "ps_supplycost")
	buildPS, _ := b.Build(selPS, exec.BuildSpec{
		Name: "build(partsupp)", KeyCols: idx(selPS, "ps_partkey", "ps_suppkey"),
		Payload: idx(selPS, "ps_supplycost"), ExpectedRows: d.numParts() * 4,
	})

	selNat := scan(b, d.Nation, nil, "n_nationkey", "n_name")
	buildN, _ := b.Build(selNat, exec.BuildSpec{
		Name: "build(nation)", KeyCols: idx(selNat, "n_nationkey"),
		Payload: idx(selNat, "n_name"), ExpectedRows: 25,
	})
	selSupp := scan(b, d.Supplier, nil, "s_suppkey", "s_nationkey")
	suppNat := b.Probe(selSupp, buildN, exec.ProbeSpec{
		Name: "probe(nation)", KeyCols: idx(selSupp, "s_nationkey"),
		ProbeProj: idx(selSupp, "s_suppkey"), BuildProj: []int{0},
	})
	buildS, _ := b.Build(suppNat, exec.BuildSpec{
		Name: "build(supplier)", KeyCols: idx(suppNat, "s_suppkey"),
		Payload: idx(suppNat, "n_name"), ExpectedRows: d.numSuppliers(),
	})

	selOrd := scan(b, d.Orders, nil, "o_orderkey", "o_orderdate")
	buildO, _ := b.Build(selOrd, exec.BuildSpec{
		Name: "build(orders)", KeyCols: idx(selOrd, "o_orderkey"),
		Payload: idx(selOrd, "o_orderdate"), ExpectedRows: d.numOrders(),
	})

	ls := d.Lineitem.Schema()
	lineSpec := exec.SelectSpec{Name: "select(lineitem)", Base: d.Lineitem}
	lineSpec.Proj, lineSpec.ProjNames = proj(ls,
		"l_partkey", "l_suppkey", "l_orderkey", "l_quantity", "l_extendedprice", "l_discount")
	if o.LIP {
		lineSpec.LIPs = []exec.LIPRef{{Build: buildPOp, KeyCol: ls.MustColIndex("l_partkey")}}
	}
	selLine := b.ScanSelect(lineSpec)

	greenParts := b.Probe(selLine, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(selLine, "l_partkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selLine, "l_partkey", "l_suppkey", "l_orderkey", "l_quantity", "l_extendedprice", "l_discount"),
	})
	withCost := b.Probe(greenParts, buildPS, exec.ProbeSpec{
		Name: "probe(partsupp)", KeyCols: idx(greenParts, "l_partkey", "l_suppkey"),
		ProbeProj: idx(greenParts, "l_suppkey", "l_orderkey", "l_quantity", "l_extendedprice", "l_discount"),
		BuildProj: []int{0},
	})
	withNat := b.Probe(withCost, buildS, exec.ProbeSpec{
		Name: "probe(supplier)", KeyCols: idx(withCost, "l_suppkey"),
		ProbeProj: idx(withCost, "l_orderkey", "l_quantity", "l_extendedprice", "l_discount", "ps_supplycost"),
		BuildProj: []int{0},
	})
	withDate := b.Probe(withNat, buildO, exec.ProbeSpec{
		Name: "probe(orders)", KeyCols: idx(withNat, "l_orderkey"),
		ProbeProj: idx(withNat, "l_quantity", "l_extendedprice", "l_discount", "ps_supplycost", "n_name"),
		BuildProj: []int{0},
	})

	s := withDate.Schema
	amount := expr.SubE(
		revenue(s, "l_extendedprice", "l_discount"),
		expr.MulE(expr.C(s, "ps_supplycost"), expr.C(s, "l_quantity")),
	)
	agg := b.Agg(withDate, exec.AggOpSpec{
		Name:         "agg(q9)",
		GroupBy:      []expr.Expr{expr.C(s, "n_name"), expr.Year(expr.C(s, "o_orderdate"))},
		GroupByNames: []string{"nation", "o_year"},
		Aggs:         []exec.AggSpec{{Func: exec.Sum, Arg: amount, Name: "sum_profit"}},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q9)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "nation")},
		{Key: expr.C(agg.Schema, "o_year"), Desc: true},
	}})
	b.Collect(srt)
	return b
}

// q11: important stock identification — the HAVING threshold is a scalar sum
// over the same German partsupp stream (fan-out plus a scalar parameter).
func q11(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	selNat := scan(b, d.Nation,
		expr.Eq(expr.C(d.Nation.Schema(), "n_name"), expr.Str("GERMANY")), "n_nationkey")
	buildN, _ := b.Build(selNat, exec.BuildSpec{
		Name: "build(nation)", KeyCols: idx(selNat, "n_nationkey"), ExpectedRows: 1,
	})
	selSupp := scan(b, d.Supplier, nil, "s_nationkey", "s_suppkey")
	suppDE := b.Probe(selSupp, buildN, exec.ProbeSpec{
		Name: "probe(nation)", KeyCols: idx(selSupp, "s_nationkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selSupp, "s_suppkey"),
	})
	buildS, _ := b.Build(suppDE, exec.BuildSpec{
		Name: "build(supplier)", KeyCols: idx(suppDE, "s_suppkey"),
		ExpectedRows: d.numSuppliers() / 25,
	})

	selPS := scan(b, d.Partsupp, nil, "ps_suppkey", "ps_partkey", "ps_supplycost", "ps_availqty")
	psDE := b.Probe(selPS, buildS, exec.ProbeSpec{
		Name: "probe(supplier)", KeyCols: idx(selPS, "ps_suppkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selPS, "ps_partkey", "ps_supplycost", "ps_availqty"),
	})

	value := expr.MulE(expr.C(psDE.Schema, "ps_supplycost"), expr.C(psDE.Schema, "ps_availqty"))
	perPart := b.Agg(psDE, exec.AggOpSpec{
		Name:         "agg(per_part)",
		GroupBy:      []expr.Expr{expr.C(psDE.Schema, "ps_partkey")},
		GroupByNames: []string{"ps_partkey"},
		Aggs:         []exec.AggSpec{{Func: exec.Sum, Arg: value, Name: "value"}},
	})
	total := b.Agg(psDE, exec.AggOpSpec{
		Name: "agg(total)",
		Aggs: []exec.AggSpec{{Func: exec.Sum, Arg: value, Name: "t"}},
	})
	slot := b.Scalar(total)

	// HAVING value > total * fraction; the spec scales the fraction with
	// 1/SF so the threshold stays selective at any scale.
	fraction := 0.0001 / d.SF
	having := b.Select(perPart, exec.SelectSpec{
		Name: "having(q11)",
		Pred: expr.Gt(expr.C(perPart.Schema, "value"),
			expr.MulE(expr.Param(slot, types.Float64), expr.Float(fraction))),
		Proj:      []expr.Expr{expr.C(perPart.Schema, "ps_partkey"), expr.C(perPart.Schema, "value")},
		ProjNames: []string{"ps_partkey", "value"},
	})
	b.Gate(total, having)

	srt := b.Sort(having, exec.SortSpec{Name: "sort(q11)", Terms: []exec.SortTerm{
		{Key: expr.C(having.Schema, "value"), Desc: true},
	}})
	b.Collect(srt)
	return b
}

// q12: shipping modes and order priority — a CASE-split double count.
func q12(d *Dataset, o QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	selOrd := scan(b, d.Orders, nil, "o_orderkey", "o_orderpriority")
	buildO, _ := b.Build(selOrd, exec.BuildSpec{
		Name: "build(orders)", KeyCols: idx(selOrd, "o_orderkey"),
		Payload: idx(selOrd, "o_orderpriority"), ExpectedRows: d.numOrders(),
	})

	ls := d.Lineitem.Schema()
	selLine := scan(b, d.Lineitem,
		expr.And(
			expr.InStrings(expr.C(ls, "l_shipmode"), "MAIL", "SHIP"),
			expr.Lt(expr.C(ls, "l_commitdate"), expr.C(ls, "l_receiptdate")),
			expr.Lt(expr.C(ls, "l_shipdate"), expr.C(ls, "l_commitdate")),
			expr.Ge(expr.C(ls, "l_receiptdate"), expr.Date(1994, 1, 1)),
			expr.Lt(expr.C(ls, "l_receiptdate"), expr.Date(1995, 1, 1)),
		),
		"l_orderkey", "l_shipmode")
	probe := b.Probe(selLine, buildO, exec.ProbeSpec{
		Name: "probe(orders)", KeyCols: idx(selLine, "l_orderkey"),
		ProbeProj: idx(selLine, "l_shipmode"), BuildProj: []int{0},
	})

	s := probe.Schema
	isHigh := expr.InStrings(expr.C(s, "o_orderpriority"), "1-URGENT", "2-HIGH")
	agg := b.Agg(probe, exec.AggOpSpec{
		Name:         "agg(q12)",
		GroupBy:      []expr.Expr{expr.C(s, "l_shipmode")},
		GroupByNames: []string{"l_shipmode"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Name: "high_line_count",
				Arg: expr.Case(expr.Int(0), expr.When{Cond: isHigh, Then: expr.Int(1)})},
			{Func: exec.Sum, Name: "low_line_count",
				Arg: expr.Case(expr.Int(1), expr.When{Cond: isHigh, Then: expr.Int(0)})},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q12)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "l_shipmode")},
	}})
	b.Collect(srt)
	return b
}

// q16: parts/supplier relationship — COUNT(DISTINCT) plus a NOT IN
// subquery turned into an anti join.
func q16(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	ss := d.Supplier.Schema()
	selComplaints := scan(b, d.Supplier,
		expr.Like(expr.C(ss, "s_comment"), "%Customer%Complaints%"), "s_suppkey")
	buildC, _ := b.Build(selComplaints, exec.BuildSpec{
		Name: "build(complaints)", KeyCols: idx(selComplaints, "s_suppkey"),
		ExpectedRows: d.numSuppliers() / 64,
	})

	ps0 := d.Part.Schema()
	sizes := []types.Datum{
		types.NewInt64(49), types.NewInt64(14), types.NewInt64(23), types.NewInt64(45),
		types.NewInt64(19), types.NewInt64(3), types.NewInt64(36), types.NewInt64(9),
	}
	selPart := scan(b, d.Part,
		expr.And(
			expr.Ne(expr.C(ps0, "p_brand"), expr.Str("Brand#45")),
			expr.NotLike(expr.C(ps0, "p_type"), "MEDIUM POLISHED%"),
			expr.In(expr.C(ps0, "p_size"), sizes...),
		),
		"p_partkey", "p_brand", "p_type", "p_size")
	buildP, _ := b.Build(selPart, exec.BuildSpec{
		Name: "build(part)", KeyCols: idx(selPart, "p_partkey"),
		Payload:      idx(selPart, "p_brand", "p_type", "p_size"),
		ExpectedRows: d.numParts() / 6,
	})

	selPS := scan(b, d.Partsupp, nil, "ps_suppkey", "ps_partkey")
	noComplaints := b.Probe(selPS, buildC, exec.ProbeSpec{
		Name: "probe(complaints)", KeyCols: idx(selPS, "ps_suppkey"), JoinType: exec.LeftAnti,
		ProbeProj: idx(selPS, "ps_partkey", "ps_suppkey"),
	})
	withPart := b.Probe(noComplaints, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(noComplaints, "ps_partkey"),
		ProbeProj: idx(noComplaints, "ps_suppkey"), BuildProj: []int{0, 1, 2},
	})

	s := withPart.Schema
	agg := b.Agg(withPart, exec.AggOpSpec{
		Name: "agg(q16)",
		GroupBy: []expr.Expr{
			expr.C(s, "p_brand"), expr.C(s, "p_type"), expr.C(s, "p_size"),
		},
		GroupByNames: []string{"p_brand", "p_type", "p_size"},
		Aggs: []exec.AggSpec{
			{Func: exec.CountDistinct, Arg: expr.C(s, "ps_suppkey"), Name: "supplier_cnt"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q16)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "supplier_cnt"), Desc: true},
		{Key: expr.C(agg.Schema, "p_brand")},
		{Key: expr.C(agg.Schema, "p_type")},
		{Key: expr.C(agg.Schema, "p_size")},
	}})
	b.Collect(srt)
	return b
}

// q17: small-quantity-order revenue — the correlated AVG becomes a per-part
// aggregate joined back with a quantity residual; the filtered lineitem
// stream fans out to both the aggregate and the final probe.
func q17(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	ps0 := d.Part.Schema()
	selPart := scan(b, d.Part,
		expr.And(
			expr.Eq(expr.C(ps0, "p_brand"), expr.Str("Brand#23")),
			expr.Eq(expr.C(ps0, "p_container"), expr.Str("MED BOX")),
		),
		"p_partkey")
	buildP, _ := b.Build(selPart, exec.BuildSpec{
		Name: "build(part)", KeyCols: idx(selPart, "p_partkey"),
		ExpectedRows: d.numParts() / 1000,
	})

	selLine := scan(b, d.Lineitem, nil, "l_partkey", "l_quantity", "l_extendedprice")
	onPart := b.Probe(selLine, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(selLine, "l_partkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selLine, "l_partkey", "l_quantity", "l_extendedprice"),
	})

	avgQty := b.Agg(onPart, exec.AggOpSpec{
		Name:         "agg(avg_qty)",
		GroupBy:      []expr.Expr{expr.C(onPart.Schema, "l_partkey")},
		GroupByNames: []string{"l_partkey"},
		Aggs: []exec.AggSpec{
			{Func: exec.Avg, Arg: expr.C(onPart.Schema, "l_quantity"), Name: "avg_qty"},
		},
	})
	buildA, buildAOp := b.Build(avgQty, exec.BuildSpec{
		Name: "build(avg_qty)", KeyCols: idx(avgQty, "l_partkey"),
		Payload: idx(avgQty, "avg_qty"), ExpectedRows: d.numParts() / 1000,
	})

	small := b.Probe(onPart, buildA, exec.ProbeSpec{
		Name: "probe(avg_qty)", KeyCols: idx(onPart, "l_partkey"),
		Residual: expr.Lt(expr.C(onPart.Schema, "l_quantity"),
			expr.MulE(expr.Float(0.2), expr.C2(buildAOp.PayloadSchema(), "avg_qty"))),
		ProbeProj: idx(onPart, "l_extendedprice"),
	})
	agg := b.Agg(small, exec.AggOpSpec{
		Name: "agg(q17)",
		Aggs: []exec.AggSpec{{Func: exec.Sum, Arg: expr.C(small.Schema, "l_extendedprice"), Name: "s"}},
	})
	out := b.Select(agg, exec.SelectSpec{
		Name:      "compute(avg_yearly)",
		Proj:      []expr.Expr{expr.DivE(expr.C(agg.Schema, "s"), expr.Float(7))},
		ProjNames: []string{"avg_yearly"},
	})
	b.Collect(out)
	return b
}

// q18: large volume customers — the HAVING sum(l_quantity) > 300 subquery
// becomes an aggregate-filter-build chain probed by orders.
func q18(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	selLine := scan(b, d.Lineitem, nil, "l_orderkey", "l_quantity")
	perOrder := b.Agg(selLine, exec.AggOpSpec{
		Name:         "agg(per_order)",
		GroupBy:      []expr.Expr{expr.C(selLine.Schema, "l_orderkey")},
		GroupByNames: []string{"l_orderkey"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: expr.C(selLine.Schema, "l_quantity"), Name: "sum_qty"},
		},
	})
	big := b.Select(perOrder, exec.SelectSpec{
		Name:      "having(q18)",
		Pred:      expr.Gt(expr.C(perOrder.Schema, "sum_qty"), expr.Float(300)),
		Proj:      []expr.Expr{expr.C(perOrder.Schema, "l_orderkey"), expr.C(perOrder.Schema, "sum_qty")},
		ProjNames: []string{"l_orderkey", "sum_qty"},
	})
	buildB, _ := b.Build(big, exec.BuildSpec{
		Name: "build(big_orders)", KeyCols: idx(big, "l_orderkey"),
		Payload: idx(big, "sum_qty"), ExpectedRows: 1024,
	})

	selCust := scan(b, d.Customer, nil, "c_custkey", "c_name")
	buildC, _ := b.Build(selCust, exec.BuildSpec{
		Name: "build(customer)", KeyCols: idx(selCust, "c_custkey"),
		Payload: idx(selCust, "c_name"), ExpectedRows: d.numCustomers(),
	})

	selOrd := scan(b, d.Orders, nil, "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice")
	bigOrders := b.Probe(selOrd, buildB, exec.ProbeSpec{
		Name: "probe(big_orders)", KeyCols: idx(selOrd, "o_orderkey"),
		ProbeProj: idx(selOrd, "o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"),
		BuildProj: []int{0},
	})
	withCust := b.Probe(bigOrders, buildC, exec.ProbeSpec{
		Name: "probe(customer)", KeyCols: idx(bigOrders, "o_custkey"),
		ProbeProj: idx(bigOrders, "o_custkey", "o_orderkey", "o_orderdate", "o_totalprice", "sum_qty"),
		BuildProj: []int{0},
	})
	srt := b.Sort(withCust, exec.SortSpec{Name: "sort(q18)", Limit: 100, Terms: []exec.SortTerm{
		{Key: expr.C(withCust.Schema, "o_totalprice"), Desc: true},
		{Key: expr.C(withCust.Schema, "o_orderdate")},
	}})
	b.Collect(srt)
	return b
}

// q20: potential part promotion — nested IN subqueries become a semi-join
// chain with a per-(part,supplier) quantity aggregate and an availability
// residual.
func q20(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	ps0 := d.Part.Schema()
	selPart := scan(b, d.Part, expr.Like(expr.C(ps0, "p_name"), "forest%"), "p_partkey")
	buildP, _ := b.Build(selPart, exec.BuildSpec{
		Name: "build(part)", KeyCols: idx(selPart, "p_partkey"),
		ExpectedRows: d.numParts() / 40,
	})

	ls := d.Lineitem.Schema()
	selLine := scan(b, d.Lineitem,
		expr.And(
			expr.Ge(expr.C(ls, "l_shipdate"), expr.Date(1994, 1, 1)),
			expr.Lt(expr.C(ls, "l_shipdate"), expr.Date(1995, 1, 1)),
		),
		"l_partkey", "l_suppkey", "l_quantity")
	lineForest := b.Probe(selLine, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(selLine, "l_partkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selLine, "l_partkey", "l_suppkey", "l_quantity"),
	})
	sumQty := b.Agg(lineForest, exec.AggOpSpec{
		Name: "agg(sum_qty)",
		GroupBy: []expr.Expr{
			expr.C(lineForest.Schema, "l_partkey"), expr.C(lineForest.Schema, "l_suppkey"),
		},
		GroupByNames: []string{"l_partkey", "l_suppkey"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: expr.C(lineForest.Schema, "l_quantity"), Name: "sum_qty"},
		},
	})
	buildQ, buildQOp := b.Build(sumQty, exec.BuildSpec{
		Name: "build(sum_qty)", KeyCols: idx(sumQty, "l_partkey", "l_suppkey"),
		Payload: idx(sumQty, "sum_qty"), ExpectedRows: d.numParts() / 10,
	})

	selPS := scan(b, d.Partsupp, nil, "ps_partkey", "ps_suppkey", "ps_availqty")
	psForest := b.Probe(selPS, buildP, exec.ProbeSpec{
		Name: "probe(part2)", KeyCols: idx(selPS, "ps_partkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selPS, "ps_partkey", "ps_suppkey", "ps_availqty"),
	})
	excess := b.Probe(psForest, buildQ, exec.ProbeSpec{
		Name:    "probe(sum_qty)",
		KeyCols: idx(psForest, "ps_partkey", "ps_suppkey"), JoinType: exec.LeftSemi,
		Residual: expr.Gt(expr.C(psForest.Schema, "ps_availqty"),
			expr.MulE(expr.Float(0.5), expr.C2(buildQOp.PayloadSchema(), "sum_qty"))),
		ProbeProj: idx(psForest, "ps_suppkey"),
	})
	buildSK, _ := b.Build(excess, exec.BuildSpec{
		Name: "build(supp_keys)", KeyCols: idx(excess, "ps_suppkey"),
		ExpectedRows: d.numSuppliers() / 4,
	})

	selNat := scan(b, d.Nation,
		expr.Eq(expr.C(d.Nation.Schema(), "n_name"), expr.Str("CANADA")), "n_nationkey")
	buildN, _ := b.Build(selNat, exec.BuildSpec{
		Name: "build(nation)", KeyCols: idx(selNat, "n_nationkey"), ExpectedRows: 1,
	})
	selSupp := scan(b, d.Supplier, nil, "s_nationkey", "s_suppkey", "s_name", "s_address")
	suppCA := b.Probe(selSupp, buildN, exec.ProbeSpec{
		Name: "probe(nation)", KeyCols: idx(selSupp, "s_nationkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selSupp, "s_suppkey", "s_name", "s_address"),
	})
	final := b.Probe(suppCA, buildSK, exec.ProbeSpec{
		Name: "probe(supp_keys)", KeyCols: idx(suppCA, "s_suppkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(suppCA, "s_name", "s_address"),
	})
	srt := b.Sort(final, exec.SortSpec{Name: "sort(q20)", Terms: []exec.SortTerm{
		{Key: expr.C(final.Schema, "s_name")},
	}})
	b.Collect(srt)
	return b
}
