package tpch

import (
	"math"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/types"
)

func TestQ12AgainstBruteForce(t *testing.T) {
	d := testData(t)
	os := d.Orders.Schema()
	prio := map[int64]string{}
	iOK, iP := os.MustColIndex("o_orderkey"), os.MustColIndex("o_orderpriority")
	eachRow(d.Orders, func(b *storage.Block, r int) {
		prio[b.Int64At(iOK, r)] = string(types.TrimPad(b.BytesAt(iP, r)))
	})

	ls := d.Lineitem.Schema()
	iLOK := ls.MustColIndex("l_orderkey")
	iMode := ls.MustColIndex("l_shipmode")
	iShip, iCommit, iReceipt := ls.MustColIndex("l_shipdate"), ls.MustColIndex("l_commitdate"), ls.MustColIndex("l_receiptdate")
	lo, hi := types.ToDays(1994, 1, 1), types.ToDays(1995, 1, 1)
	type counts struct{ high, low int64 }
	want := map[string]*counts{}
	eachRow(d.Lineitem, func(b *storage.Block, r int) {
		mode := string(types.TrimPad(b.BytesAt(iMode, r)))
		if mode != "MAIL" && mode != "SHIP" {
			return
		}
		ship, commit, receipt := b.DateAt(iShip, r), b.DateAt(iCommit, r), b.DateAt(iReceipt, r)
		if !(commit < receipt && ship < commit && receipt >= lo && receipt < hi) {
			return
		}
		c := want[mode]
		if c == nil {
			c = &counts{}
			want[mode] = c
		}
		p := prio[b.Int64At(iLOK, r)]
		if p == "1-URGENT" || p == "2-HIGH" {
			c.high++
		} else {
			c.low++
		}
	})

	rows := runQuery(t, d, 12, engine.Options{Workers: 4, UoTBlocks: 1}, QueryOpts{})
	if len(rows) != len(want) {
		t.Fatalf("q12 modes = %d, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		mode := string(row[0].Bytes())
		w := want[mode]
		if w == nil {
			t.Fatalf("unexpected mode %q", mode)
		}
		if row[1].I != w.high || row[2].I != w.low {
			t.Errorf("q12 %s = (%d,%d), want (%d,%d)", mode, row[1].I, row[2].I, w.high, w.low)
		}
	}
}

func TestQ17AgainstBruteForce(t *testing.T) {
	d := testData(t)
	ps := d.Part.Schema()
	iPK, iBrand, iCont := ps.MustColIndex("p_partkey"), ps.MustColIndex("p_brand"), ps.MustColIndex("p_container")
	match := map[int64]bool{}
	eachRow(d.Part, func(b *storage.Block, r int) {
		if string(types.TrimPad(b.BytesAt(iBrand, r))) == "Brand#23" &&
			string(types.TrimPad(b.BytesAt(iCont, r))) == "MED BOX" {
			match[b.Int64At(iPK, r)] = true
		}
	})
	ls := d.Lineitem.Schema()
	iLPK, iQty, iExt := ls.MustColIndex("l_partkey"), ls.MustColIndex("l_quantity"), ls.MustColIndex("l_extendedprice")
	sum := map[int64]float64{}
	cnt := map[int64]int64{}
	eachRow(d.Lineitem, func(b *storage.Block, r int) {
		pk := b.Int64At(iLPK, r)
		if match[pk] {
			sum[pk] += b.Float64At(iQty, r)
			cnt[pk]++
		}
	})
	var total float64
	eachRow(d.Lineitem, func(b *storage.Block, r int) {
		pk := b.Int64At(iLPK, r)
		if match[pk] && b.Float64At(iQty, r) < 0.2*sum[pk]/float64(cnt[pk]) {
			total += b.Float64At(iExt, r)
		}
	})
	want := total / 7

	rows := runQuery(t, d, 17, engine.Options{Workers: 4, UoTBlocks: 2}, QueryOpts{})
	if len(rows) != 1 {
		t.Fatalf("q17 rows = %d", len(rows))
	}
	if got := rows[0][0].F; math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("q17 = %v, want %v", got, want)
	}
}

func TestQ18AgainstBruteForce(t *testing.T) {
	d := testData(t)
	ls := d.Lineitem.Schema()
	iLOK, iQty := ls.MustColIndex("l_orderkey"), ls.MustColIndex("l_quantity")
	perOrder := map[int64]float64{}
	eachRow(d.Lineitem, func(b *storage.Block, r int) {
		perOrder[b.Int64At(iLOK, r)] += b.Float64At(iQty, r)
	})
	var wantOrders []int64
	for ok, q := range perOrder {
		if q > 300 {
			wantOrders = append(wantOrders, ok)
		}
	}

	rows := runQuery(t, d, 18, engine.Options{Workers: 4, UoTBlocks: 1}, QueryOpts{})
	if len(rows) != len(wantOrders) {
		t.Fatalf("q18 rows = %d, want %d", len(rows), len(wantOrders))
	}
	seen := map[int64]bool{}
	for _, row := range rows {
		seen[row[1].I] = true // o_orderkey column
		if row[4].F <= 300 {
			t.Errorf("q18 emitted order with sum_qty %v", row[4].F)
		}
	}
	for _, ok := range wantOrders {
		if !seen[ok] {
			t.Errorf("q18 missing order %d", ok)
		}
	}
}

func TestQ16DistinctSuppliers(t *testing.T) {
	d := testData(t)
	rows := runQuery(t, d, 16, engine.Options{Workers: 4, UoTBlocks: 1}, QueryOpts{})
	if len(rows) == 0 {
		t.Fatal("q16 empty")
	}
	// Every supplier count must be between 1 and 4 (suppsPerPart = 4 offers
	// per part, so a (brand,type,size) group has at least one and counts
	// distinct suppliers).
	for _, row := range rows {
		if c := row[3].I; c < 1 {
			t.Fatalf("q16 non-positive distinct count: %v", row)
		}
	}
}
