package tpch

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/storage"
)

// QueryOpts tunes plan construction.
type QueryOpts struct {
	// LIP enables lookahead-information-passing bloom filters: filtered
	// build sides push their key sets sideways into the probe-side
	// (usually lineitem) select, pruning tuples before materialization
	// (Section VI-C of the paper).
	LIP bool
	// Staged executes probe cascades "one join at a time": each hash
	// table is built only after the previous probe finished, so at most
	// one cascade hash table is live at once — the high-UoT execution
	// Table II of the paper analyzes. Currently honored by Q7 (the
	// query the paper's memory analysis uses).
	Staged bool
}

type buildFunc func(d *Dataset, o QueryOpts) *engine.Builder

var queryRegistry = map[int]buildFunc{}

func register(num int, f buildFunc) { queryRegistry[num] = f }

// Numbers returns the implemented query numbers, ascending. These are the
// fourteen TPC-H queries the paper's tables and figures analyze
// individually.
func Numbers() []int {
	out := make([]int, 0, len(queryRegistry))
	for n := range queryRegistry {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Build constructs the physical plan for TPC-H query num over dataset d.
func Build(d *Dataset, num int, o QueryOpts) (*engine.Builder, error) {
	f, ok := queryRegistry[num]
	if !ok {
		return nil, fmt.Errorf("tpch: query %d not implemented (have %v)", num, Numbers())
	}
	return f(d, o), nil
}

// MustBuild is Build that panics on unknown queries.
func MustBuild(d *Dataset, num int, o QueryOpts) *engine.Builder {
	b, err := Build(d, num, o)
	if err != nil {
		panic(err)
	}
	return b
}

// proj resolves column names to reference expressions.
func proj(s *storage.Schema, names ...string) ([]expr.Expr, []string) {
	es := make([]expr.Expr, len(names))
	for i, n := range names {
		es[i] = expr.C(s, n)
	}
	return es, names
}

// scan adds a full-projection or named-projection base-table select.
func scan(b *engine.Builder, t *storage.Table, pred expr.Expr, cols ...string) *engine.Node {
	es, names := proj(t.Schema(), cols...)
	return b.ScanSelect(exec.SelectSpec{
		Name: "select(" + t.Name() + ")",
		Base: t,
		Pred: pred,
		Proj: es, ProjNames: names,
	})
}

// idx maps column names to positions in a node's schema.
func idx(n *engine.Node, names ...string) []int {
	out := make([]int, len(names))
	for i, name := range names {
		out[i] = n.Schema.MustColIndex(name)
	}
	return out
}

// revenue is the canonical l_extendedprice * (1 - l_discount).
func revenue(s *storage.Schema, price, disc string) expr.Expr {
	return expr.MulE(expr.C(s, price), expr.SubE(expr.Float(1), expr.C(s, disc)))
}
