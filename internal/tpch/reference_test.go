package tpch

import (
	"math"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/types"
)

// These tests validate absolute correctness (not just cross-configuration
// consistency) by recomputing selected queries with brute-force scans over
// the raw generated tables.

func eachRow(t *storage.Table, fn func(b *storage.Block, r int)) {
	for _, b := range t.Blocks() {
		for r := 0; r < b.NumRows(); r++ {
			fn(b, r)
		}
	}
}

func TestQ6AgainstBruteForce(t *testing.T) {
	d := testData(t)
	ls := d.Lineitem.Schema()
	iShip, iDisc, iQty := ls.MustColIndex("l_shipdate"), ls.MustColIndex("l_discount"), ls.MustColIndex("l_quantity")
	iExt := ls.MustColIndex("l_extendedprice")
	lo, hi := types.ToDays(1994, 1, 1), types.ToDays(1995, 1, 1)
	want := 0.0
	eachRow(d.Lineitem, func(b *storage.Block, r int) {
		s := b.DateAt(iShip, r)
		disc := b.Float64At(iDisc, r)
		if s >= lo && s < hi && disc >= 0.05 && disc <= 0.07 && b.Float64At(iQty, r) < 24 {
			want += b.Float64At(iExt, r) * disc
		}
	})
	rows := runQuery(t, d, 6, engine.Options{Workers: 4, UoTBlocks: 1}, QueryOpts{})
	if len(rows) != 1 {
		t.Fatalf("q6 rows = %d", len(rows))
	}
	if got := rows[0][0].F; math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Fatalf("q6 revenue = %v, want %v", got, want)
	}
}

func TestQ1AgainstBruteForce(t *testing.T) {
	d := testData(t)
	ls := d.Lineitem.Schema()
	iShip := ls.MustColIndex("l_shipdate")
	iRF, iLS := ls.MustColIndex("l_returnflag"), ls.MustColIndex("l_linestatus")
	iQty, iExt, iDisc, iTax := ls.MustColIndex("l_quantity"), ls.MustColIndex("l_extendedprice"),
		ls.MustColIndex("l_discount"), ls.MustColIndex("l_tax")
	cutoff := types.ToDays(1998, 9, 2)

	type acc struct {
		qty, price, disc, discPrice, charge float64
		n                                   int64
	}
	want := map[string]*acc{}
	eachRow(d.Lineitem, func(b *storage.Block, r int) {
		if b.DateAt(iShip, r) > cutoff {
			return
		}
		key := string(types.TrimPad(b.BytesAt(iRF, r))) + "|" + string(types.TrimPad(b.BytesAt(iLS, r)))
		a := want[key]
		if a == nil {
			a = &acc{}
			want[key] = a
		}
		q, e, dc, tx := b.Float64At(iQty, r), b.Float64At(iExt, r), b.Float64At(iDisc, r), b.Float64At(iTax, r)
		a.qty += q
		a.price += e
		a.disc += dc
		a.discPrice += e * (1 - dc)
		a.charge += e * (1 - dc) * (1 + tx)
		a.n++
	})

	rows := runQuery(t, d, 1, engine.Options{Workers: 4, UoTBlocks: 2}, QueryOpts{})
	if len(rows) != len(want) {
		t.Fatalf("q1 groups = %d, want %d", len(rows), len(want))
	}
	const tol = 1e-6
	for _, row := range rows {
		key := string(row[0].Bytes()) + "|" + string(row[1].Bytes())
		a := want[key]
		if a == nil {
			t.Fatalf("unexpected group %q", key)
		}
		checks := []struct {
			name string
			got  float64
			want float64
		}{
			{"sum_qty", row[2].F, a.qty},
			{"sum_base_price", row[3].F, a.price},
			{"sum_disc_price", row[4].F, a.discPrice},
			{"sum_charge", row[5].F, a.charge},
			{"avg_qty", row[6].F, a.qty / float64(a.n)},
			{"avg_price", row[7].F, a.price / float64(a.n)},
			{"avg_disc", row[8].F, a.disc / float64(a.n)},
		}
		for _, c := range checks {
			if math.Abs(c.got-c.want) > tol*(1+math.Abs(c.want)) {
				t.Errorf("q1 %s %s = %v, want %v", key, c.name, c.got, c.want)
			}
		}
		if row[9].I != a.n {
			t.Errorf("q1 %s count = %d, want %d", key, row[9].I, a.n)
		}
	}
}

func TestQ4AgainstBruteForce(t *testing.T) {
	d := testData(t)
	ls, os := d.Lineitem.Schema(), d.Orders.Schema()
	late := map[int64]bool{}
	iOK, iC, iR := ls.MustColIndex("l_orderkey"), ls.MustColIndex("l_commitdate"), ls.MustColIndex("l_receiptdate")
	eachRow(d.Lineitem, func(b *storage.Block, r int) {
		if b.DateAt(iC, r) < b.DateAt(iR, r) {
			late[b.Int64At(iOK, r)] = true
		}
	})
	lo, hi := types.ToDays(1993, 7, 1), types.ToDays(1993, 10, 1)
	iOOK, iOD, iPrio := os.MustColIndex("o_orderkey"), os.MustColIndex("o_orderdate"), os.MustColIndex("o_orderpriority")
	want := map[string]int64{}
	eachRow(d.Orders, func(b *storage.Block, r int) {
		if dt := b.DateAt(iOD, r); dt >= lo && dt < hi && late[b.Int64At(iOOK, r)] {
			want[string(types.TrimPad(b.BytesAt(iPrio, r)))]++
		}
	})

	rows := runQuery(t, d, 4, engine.Options{Workers: 4, UoTBlocks: 1}, QueryOpts{})
	if len(rows) != len(want) {
		t.Fatalf("q4 groups = %d, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		if got, w := row[1].I, want[string(row[0].Bytes())]; got != w {
			t.Errorf("q4 %s = %d, want %d", row[0].Bytes(), got, w)
		}
	}
}

func TestQ13AgainstBruteForce(t *testing.T) {
	d := testData(t)
	os := d.Orders.Schema()
	iCK, iCom := os.MustColIndex("o_custkey"), os.MustColIndex("o_comment")
	perCust := map[int64]int64{}
	eachRow(d.Orders, func(b *storage.Block, r int) {
		comment := string(types.TrimPad(b.BytesAt(iCom, r)))
		if matchesSpecialRequests(comment) {
			return
		}
		perCust[b.Int64At(iCK, r)]++
	})
	want := map[int64]int64{} // c_count -> custdist
	nCust := int64(d.Customer.NumRows())
	for k := int64(1); k <= nCust; k++ {
		want[perCust[k]]++
	}

	rows := runQuery(t, d, 13, engine.Options{Workers: 4, UoTBlocks: 1}, QueryOpts{})
	if len(rows) != len(want) {
		t.Fatalf("q13 buckets = %d, want %d", len(rows), len(want))
	}
	for _, row := range rows {
		if got, w := row[1].I, want[row[0].I]; got != w {
			t.Errorf("q13 c_count=%d custdist = %d, want %d", row[0].I, got, w)
		}
	}
	// Q22 precondition: the zero bucket must exist and be large.
	if want[0] < nCust/4 {
		t.Errorf("zero-order customers = %d of %d; generator skew broken", want[0], nCust)
	}
}

// matchesSpecialRequests mirrors LIKE '%special%requests%'.
func matchesSpecialRequests(s string) bool {
	i := indexOf(s, "special")
	if i < 0 {
		return false
	}
	return indexOf(s[i+len("special"):], "requests") >= 0
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestQ15AgainstBruteForce(t *testing.T) {
	d := testData(t)
	ls := d.Lineitem.Schema()
	iSupp, iShip := ls.MustColIndex("l_suppkey"), ls.MustColIndex("l_shipdate")
	iExt, iDisc := ls.MustColIndex("l_extendedprice"), ls.MustColIndex("l_discount")
	lo, hi := types.ToDays(1996, 1, 1), types.ToDays(1996, 4, 1)
	rev := map[int64]float64{}
	eachRow(d.Lineitem, func(b *storage.Block, r int) {
		if s := b.DateAt(iShip, r); s >= lo && s < hi {
			rev[b.Int64At(iSupp, r)] += b.Float64At(iExt, r) * (1 - b.Float64At(iDisc, r))
		}
	})
	best := math.Inf(-1)
	var bestSupp []int64
	for k, v := range rev {
		if v > best {
			best, bestSupp = v, []int64{k}
		} else if v == best {
			bestSupp = append(bestSupp, k)
		}
	}
	sort.Slice(bestSupp, func(i, j int) bool { return bestSupp[i] < bestSupp[j] })

	rows := runQuery(t, d, 15, engine.Options{Workers: 4, UoTBlocks: 1}, QueryOpts{})
	if len(rows) != len(bestSupp) {
		t.Fatalf("q15 rows = %d, want %d", len(rows), len(bestSupp))
	}
	for i, row := range rows {
		if row[0].I != bestSupp[i] {
			t.Errorf("q15 supplier = %d, want %d", row[0].I, bestSupp[i])
		}
		if math.Abs(row[4].F-best) > 1e-6*(1+best) {
			t.Errorf("q15 revenue = %v, want %v", row[4].F, best)
		}
	}
}
