// Package tpch provides a deterministic TPC-H substrate: a scale-factor
// data generator with the official schema, cardinality ratios, and value
// distributions approximated closely enough that the paper's predicate
// selectivities hold, plus hand-built physical plans for the TPC-H queries
// the paper evaluates (Q1, 3, 4, 5, 6, 7, 8, 10, 13, 14, 15, 19, 21, 22).
//
// Substitution note (see DESIGN.md): this replaces the official dbgen tool,
// which cannot be vendored. Column widths mirror dbgen's fixed-width layout
// (long comments trimmed to keep memory proportional), so selectivity and
// projectivity ratios — what the paper's memory model consumes — are
// preserved.
package tpch

import (
	"repro/internal/storage"
	"repro/internal/types"
)

func i64(name string) storage.Column  { return storage.Column{Name: name, Type: types.Int64} }
func f64(name string) storage.Column  { return storage.Column{Name: name, Type: types.Float64} }
func date(name string) storage.Column { return storage.Column{Name: name, Type: types.Date} }
func char(name string, w int) storage.Column {
	return storage.Column{Name: name, Type: types.Char, Width: w}
}

// Schemas for the eight TPC-H tables.
var (
	LineitemSchema = storage.NewSchema(
		i64("l_orderkey"), i64("l_partkey"), i64("l_suppkey"), i64("l_linenumber"),
		f64("l_quantity"), f64("l_extendedprice"), f64("l_discount"), f64("l_tax"),
		char("l_returnflag", 1), char("l_linestatus", 1),
		date("l_shipdate"), date("l_commitdate"), date("l_receiptdate"),
		char("l_shipinstruct", 25), char("l_shipmode", 10), char("l_comment", 44),
	)
	OrdersSchema = storage.NewSchema(
		i64("o_orderkey"), i64("o_custkey"), char("o_orderstatus", 1),
		f64("o_totalprice"), date("o_orderdate"), char("o_orderpriority", 15),
		char("o_clerk", 15), i64("o_shippriority"), char("o_comment", 49),
	)
	CustomerSchema = storage.NewSchema(
		i64("c_custkey"), char("c_name", 18), char("c_address", 25), i64("c_nationkey"),
		char("c_phone", 15), f64("c_acctbal"), char("c_mktsegment", 10), char("c_comment", 47),
	)
	SupplierSchema = storage.NewSchema(
		i64("s_suppkey"), char("s_name", 18), char("s_address", 25), i64("s_nationkey"),
		char("s_phone", 15), f64("s_acctbal"), char("s_comment", 44),
	)
	PartSchema = storage.NewSchema(
		i64("p_partkey"), char("p_name", 35), char("p_mfgr", 25), char("p_brand", 10),
		char("p_type", 25), i64("p_size"), char("p_container", 10),
		f64("p_retailprice"), char("p_comment", 14),
	)
	PartsuppSchema = storage.NewSchema(
		i64("ps_partkey"), i64("ps_suppkey"), i64("ps_availqty"),
		f64("ps_supplycost"), char("ps_comment", 50),
	)
	NationSchema = storage.NewSchema(
		i64("n_nationkey"), char("n_name", 12), i64("n_regionkey"), char("n_comment", 44),
	)
	RegionSchema = storage.NewSchema(
		i64("r_regionkey"), char("r_name", 12), char("r_comment", 44),
	)
)

// Cardinality ratios per unit scale factor (TPC-H specification 4.2.5).
const (
	customersPerSF = 150000
	ordersPerCust  = 10
	suppliersPerSF = 10000
	partsPerSF     = 200000
	suppsPerPart   = 4
)

// nations lists the 25 TPC-H nations with their region keys.
var nations = []struct {
	name   string
	region int64
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1}, {"EGYPT", 4},
	{"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3}, {"INDIA", 2}, {"INDONESIA", 2},
	{"IRAN", 4}, {"IRAQ", 4}, {"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0},
	{"MOROCCO", 0}, {"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3}, {"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var segments = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}

var shipmodes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

var shipinstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}

var containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
var containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}

var types1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
var types2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
var types3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}

var colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched",
	"blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate",
	"coral", "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim",
	"dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost",
	"goldenrod", "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory",
}

var words = []string{
	"the", "quickly", "final", "pending", "furiously", "carefully", "express", "bold",
	"regular", "ironic", "even", "special", "silent", "slyly", "blithely", "unusual",
	"requests", "deposits", "packages", "accounts", "instructions", "theodolites", "foxes",
	"pinto", "beans", "dependencies", "excuses", "platelets", "asymptotes", "courts", "ideas",
}
