package tpch

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/types"
)

const testSF = 0.01

var (
	dsOnce sync.Once
	dsCol  *Dataset
)

// testData loads (once) a small column-store dataset shared by tests.
func testData(t *testing.T) *Dataset {
	t.Helper()
	dsOnce.Do(func() { dsCol = Load(testSF, 64<<10, storage.ColumnStore) })
	return dsCol
}

func TestGeneratorCardinalities(t *testing.T) {
	d := testData(t)
	if got := d.Region.NumRows(); got != 5 {
		t.Errorf("region rows = %d", got)
	}
	if got := d.Nation.NumRows(); got != 25 {
		t.Errorf("nation rows = %d", got)
	}
	if got := d.Customer.NumRows(); got != int64(testSF*customersPerSF) {
		t.Errorf("customer rows = %d", got)
	}
	if got := d.Supplier.NumRows(); got != int64(testSF*suppliersPerSF) {
		t.Errorf("supplier rows = %d", got)
	}
	if got := d.Orders.NumRows(); got != int64(testSF*customersPerSF*ordersPerCust) {
		t.Errorf("orders rows = %d", got)
	}
	if got := d.Part.NumRows(); got != int64(testSF*partsPerSF) {
		t.Errorf("part rows = %d", got)
	}
	if got := d.Partsupp.NumRows(); got != 4*d.Part.NumRows() {
		t.Errorf("partsupp rows = %d", got)
	}
	// Lineitem averages 4 lines per order.
	lpo := float64(d.Lineitem.NumRows()) / float64(d.Orders.NumRows())
	if lpo < 3.5 || lpo > 4.5 {
		t.Errorf("lines per order = %.2f", lpo)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := Load(0.002, 16<<10, storage.ColumnStore)
	b := Load(0.002, 32<<10, storage.RowStore) // layout must not change values
	ra, rb := engine.Rows(a.Lineitem), engine.Rows(b.Lineitem)
	if len(ra) != len(rb) {
		t.Fatalf("row counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		for c := range ra[i] {
			if !types.Equal(ra[i][c], rb[i][c]) {
				t.Fatalf("row %d col %d differs: %v vs %v", i, c, ra[i][c], rb[i][c])
			}
		}
	}
}

func TestGeneratorValueDomains(t *testing.T) {
	d := testData(t)
	ls := d.Lineitem.Schema()
	iShip, iCommit, iReceipt := ls.MustColIndex("l_shipdate"), ls.MustColIndex("l_commitdate"), ls.MustColIndex("l_receiptdate")
	iDisc, iQty := ls.MustColIndex("l_discount"), ls.MustColIndex("l_quantity")
	for _, b := range d.Lineitem.Blocks() {
		for r := 0; r < b.NumRows(); r++ {
			ship, commit, receipt := b.DateAt(iShip, r), b.DateAt(iCommit, r), b.DateAt(iReceipt, r)
			if receipt <= ship {
				t.Fatal("receiptdate must follow shipdate")
			}
			if y := types.Year(ship); y < 1992 || y > 1998 {
				t.Fatalf("shipdate year %d", y)
			}
			_ = commit
			if disc := b.Float64At(iDisc, r); disc < 0 || disc > 0.10 {
				t.Fatalf("discount %v", disc)
			}
			if q := b.Float64At(iQty, r); q < 1 || q > 50 {
				t.Fatalf("quantity %v", q)
			}
		}
	}
	// Orders dates within spec range.
	os := d.Orders.Schema()
	iDate := os.MustColIndex("o_orderdate")
	for _, b := range d.Orders.Blocks() {
		for r := 0; r < b.NumRows(); r++ {
			dt := b.DateAt(iDate, r)
			if dt < startDate || dt > endDate {
				t.Fatalf("orderdate out of range: %v", types.NewDate(dt))
			}
		}
	}
}

func TestPredicateSelectivitiesRoughlyMatchPaper(t *testing.T) {
	d := testData(t)
	// Q6-style filter: ~1.5-2.5% of lineitem (paper-scale: highly selective).
	ls := d.Lineitem.Schema()
	n := float64(d.Lineitem.NumRows())
	count := 0
	iShip, iDisc, iQty := ls.MustColIndex("l_shipdate"), ls.MustColIndex("l_discount"), ls.MustColIndex("l_quantity")
	lo, hi := types.ToDays(1994, 1, 1), types.ToDays(1995, 1, 1)
	for _, b := range d.Lineitem.Blocks() {
		for r := 0; r < b.NumRows(); r++ {
			if s := b.DateAt(iShip, r); s >= lo && s < hi {
				if disc := b.Float64At(iDisc, r); disc >= 0.05 && disc <= 0.07 {
					if b.Float64At(iQty, r) < 24 {
						count++
					}
				}
			}
		}
	}
	sel := float64(count) / n
	if sel < 0.005 || sel > 0.05 {
		t.Errorf("Q6 selectivity %.4f outside plausible range", sel)
	}
}

func runQuery(t *testing.T, d *Dataset, num int, opts engine.Options, qo QueryOpts) [][]types.Datum {
	t.Helper()
	b, err := Build(d, num, qo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Execute(b, opts)
	if err != nil {
		t.Fatalf("q%d: %v", num, err)
	}
	rows := engine.Rows(res.Table)
	engine.SortRows(rows)
	return rows
}

func rowsEqual(a, b [][]types.Datum) (bool, string) {
	if len(a) != len(b) {
		return false, fmt.Sprintf("row counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false, fmt.Sprintf("row %d arity", i)
		}
		for c := range a[i] {
			x, y := a[i][c], b[i][c]
			if x.Ty == types.Float64 || y.Ty == types.Float64 {
				fx, fy := x.Float(), y.Float()
				tol := 1e-6 * (1 + math.Abs(fx))
				if math.Abs(fx-fy) > tol {
					return false, fmt.Sprintf("row %d col %d: %v vs %v", i, c, x, y)
				}
				continue
			}
			if !types.Equal(x, y) {
				return false, fmt.Sprintf("row %d col %d: %v vs %v", i, c, x, y)
			}
		}
	}
	return true, ""
}

// TestQueriesInvariantAcrossConfigurations is the main correctness oracle:
// every implemented query returns the same result across the UoT spectrum,
// worker counts, temp formats, and LIP on/off.
func TestQueriesInvariantAcrossConfigurations(t *testing.T) {
	if testing.Short() {
		t.Skip("full query matrix in short mode")
	}
	d := testData(t)
	for _, num := range Numbers() {
		num := num
		t.Run(fmt.Sprintf("q%02d", num), func(t *testing.T) {
			t.Parallel()
			base := runQuery(t, d, num, engine.Options{Workers: 1, UoTBlocks: 1, TempBlockBytes: 16 << 10}, QueryOpts{})
			// Scalar aggregates return a single row; highly selective
			// queries can legitimately return none at tiny scale factors.
			mayBeEmpty := map[int]bool{2: true, 17: true, 18: true, 20: true}
			if !mayBeEmpty[num] && len(base) == 0 {
				t.Fatalf("q%d returned no rows at SF %.2f", num, testSF)
			}
			configs := []struct {
				label string
				opts  engine.Options
				qo    QueryOpts
			}{
				{"uot=table", engine.Options{Workers: 4, UoTBlocks: core.UoTTable, TempBlockBytes: 16 << 10}, QueryOpts{}},
				{"uot=3,T=4", engine.Options{Workers: 4, UoTBlocks: 3, TempBlockBytes: 16 << 10}, QueryOpts{}},
				{"temp=col", engine.Options{Workers: 2, UoTBlocks: 1, TempBlockBytes: 16 << 10, TempFormat: storage.ColumnStore}, QueryOpts{}},
				{"bigtemp", engine.Options{Workers: 4, UoTBlocks: 1, TempBlockBytes: 256 << 10}, QueryOpts{}},
				{"lip", engine.Options{Workers: 4, UoTBlocks: 1, TempBlockBytes: 16 << 10}, QueryOpts{LIP: true}},
			}
			for _, cfg := range configs {
				got := runQuery(t, d, num, cfg.opts, cfg.qo)
				if ok, why := rowsEqual(base, got); !ok {
					t.Errorf("q%d %s differs from baseline: %s", num, cfg.label, why)
				}
			}
		})
	}
}

// TestQueriesRowStoreBaseTables re-runs every query on row-store base tables
// and compares against the column-store results (Fig. 8's configuration).
func TestQueriesRowStoreBaseTables(t *testing.T) {
	if testing.Short() {
		t.Skip("row-store matrix in short mode")
	}
	d := testData(t)
	dRow := Load(testSF, 64<<10, storage.RowStore)
	for _, num := range Numbers() {
		colRows := runQuery(t, d, num, engine.Options{Workers: 2, UoTBlocks: 1, TempBlockBytes: 16 << 10}, QueryOpts{})
		rowRows := runQuery(t, dRow, num, engine.Options{Workers: 2, UoTBlocks: 1, TempBlockBytes: 16 << 10}, QueryOpts{})
		if ok, why := rowsEqual(colRows, rowRows); !ok {
			t.Errorf("q%d row-store result differs: %s", num, why)
		}
	}
}

func TestUnknownQueryRejected(t *testing.T) {
	d := testData(t)
	if _, err := Build(d, 23, QueryOpts{}); err == nil {
		t.Fatal("query 23 should be unknown")
	}
}

func TestAll22QueriesImplemented(t *testing.T) {
	nums := Numbers()
	if len(nums) != 22 {
		t.Fatalf("implemented %d queries, want 22: %v", len(nums), nums)
	}
	for want := 1; want <= 22; want++ {
		if nums[want-1] != want {
			t.Fatalf("query %d missing: %v", want, nums)
		}
	}
}
