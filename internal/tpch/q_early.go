package tpch

import (
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
)

func init() {
	register(1, q01)
	register(3, q03)
	register(4, q04)
	register(5, q05)
	register(6, q06)
	register(7, q07)
	register(8, q08)
}

// q01: pricing summary report — a pure select→aggregate pipeline; the
// dominant operator is the leaf aggregation (Fig. 3 discussion).
func q01(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()
	ls := d.Lineitem.Schema()
	sel := scan(b, d.Lineitem,
		expr.Le(expr.C(ls, "l_shipdate"), expr.Date(1998, 9, 2)),
		"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "l_discount", "l_tax")
	s := sel.Schema
	discPrice := revenue(s, "l_extendedprice", "l_discount")
	charge := expr.MulE(discPrice, expr.AddE(expr.Float(1), expr.C(s, "l_tax")))
	agg := b.Agg(sel, exec.AggOpSpec{
		Name:         "agg(q1)",
		GroupBy:      []expr.Expr{expr.C(s, "l_returnflag"), expr.C(s, "l_linestatus")},
		GroupByNames: []string{"l_returnflag", "l_linestatus"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: expr.C(s, "l_quantity"), Name: "sum_qty"},
			{Func: exec.Sum, Arg: expr.C(s, "l_extendedprice"), Name: "sum_base_price"},
			{Func: exec.Sum, Arg: discPrice, Name: "sum_disc_price"},
			{Func: exec.Sum, Arg: charge, Name: "sum_charge"},
			{Func: exec.Avg, Arg: expr.C(s, "l_quantity"), Name: "avg_qty"},
			{Func: exec.Avg, Arg: expr.C(s, "l_extendedprice"), Name: "avg_price"},
			{Func: exec.Avg, Arg: expr.C(s, "l_discount"), Name: "avg_disc"},
			{Func: exec.Count, Name: "count_order"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q1)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "l_returnflag")}, {Key: expr.C(agg.Schema, "l_linestatus")},
	}})
	b.Collect(srt)
	return b
}

// q03: shipping priority — the classic customer⋉orders⋈lineitem chain with
// a select→probe pipeline on lineitem.
func q03(d *Dataset, o QueryOpts) *engine.Builder {
	b := engine.NewBuilder()
	cutoff := expr.Date(1995, 3, 15)

	selCust := scan(b, d.Customer,
		expr.Eq(expr.C(d.Customer.Schema(), "c_mktsegment"), expr.Str("BUILDING")),
		"c_custkey")
	buildC, _ := b.Build(selCust, exec.BuildSpec{
		Name: "build(customer)", KeyCols: idx(selCust, "c_custkey"),
		ExpectedRows: d.numCustomers() / 5,
	})

	selOrd := scan(b, d.Orders,
		expr.Lt(expr.C(d.Orders.Schema(), "o_orderdate"), cutoff),
		"o_custkey", "o_orderkey", "o_orderdate", "o_shippriority")
	probeC := b.Probe(selOrd, buildC, exec.ProbeSpec{
		Name: "probe(customer)", KeyCols: idx(selOrd, "o_custkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selOrd, "o_orderkey", "o_orderdate", "o_shippriority"),
	})
	buildO, buildOp := b.Build(probeC, exec.BuildSpec{
		Name: "build(orders)", KeyCols: idx(probeC, "o_orderkey"),
		Payload:      idx(probeC, "o_orderdate", "o_shippriority"),
		ExpectedRows: d.numOrders() / 10,
		BuildBloom:   o.LIP,
	})

	ls := d.Lineitem.Schema()
	lineSpec := exec.SelectSpec{
		Name: "select(lineitem)", Base: d.Lineitem,
		Pred: expr.Gt(expr.C(ls, "l_shipdate"), cutoff),
	}
	lineSpec.Proj, lineSpec.ProjNames = proj(ls, "l_orderkey", "l_extendedprice", "l_discount")
	if o.LIP {
		lineSpec.LIPs = []exec.LIPRef{{Build: buildOp, KeyCol: ls.MustColIndex("l_orderkey")}}
	}
	selLine := b.ScanSelect(lineSpec)
	probeO := b.Probe(selLine, buildO, exec.ProbeSpec{
		Name: "probe(orders)", KeyCols: idx(selLine, "l_orderkey"),
		ProbeProj: idx(selLine, "l_orderkey", "l_extendedprice", "l_discount"),
		BuildProj: []int{0, 1},
	})

	ps := probeO.Schema
	agg := b.Agg(probeO, exec.AggOpSpec{
		Name: "agg(q3)",
		GroupBy: []expr.Expr{
			expr.C(ps, "l_orderkey"), expr.C(ps, "o_orderdate"), expr.C(ps, "o_shippriority"),
		},
		GroupByNames: []string{"l_orderkey", "o_orderdate", "o_shippriority"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: revenue(ps, "l_extendedprice", "l_discount"), Name: "revenue"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q3)", Limit: 10, Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "revenue"), Desc: true}, {Key: expr.C(agg.Schema, "o_orderdate")},
	}})
	b.Collect(srt)
	return b
}

// q04: order priority checking — EXISTS turned into a semi join against a
// hash table built on (filtered) lineitem.
func q04(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()
	ls := d.Lineitem.Schema()

	selLine := scan(b, d.Lineitem,
		expr.Lt(expr.C(ls, "l_commitdate"), expr.C(ls, "l_receiptdate")),
		"l_orderkey")
	buildL, _ := b.Build(selLine, exec.BuildSpec{
		Name: "build(lineitem)", KeyCols: idx(selLine, "l_orderkey"),
		ExpectedRows: d.numOrders() * 4,
	})

	os := d.Orders.Schema()
	selOrd := scan(b, d.Orders,
		expr.And(
			expr.Ge(expr.C(os, "o_orderdate"), expr.Date(1993, 7, 1)),
			expr.Lt(expr.C(os, "o_orderdate"), expr.Date(1993, 10, 1)),
		),
		"o_orderkey", "o_orderpriority")
	probe := b.Probe(selOrd, buildL, exec.ProbeSpec{
		Name: "probe(lineitem)", KeyCols: idx(selOrd, "o_orderkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selOrd, "o_orderpriority"),
	})

	agg := b.Agg(probe, exec.AggOpSpec{
		Name:         "agg(q4)",
		GroupBy:      []expr.Expr{expr.C(probe.Schema, "o_orderpriority")},
		GroupByNames: []string{"o_orderpriority"},
		Aggs:         []exec.AggSpec{{Func: exec.Count, Name: "order_count"}},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q4)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "o_orderpriority")},
	}})
	b.Collect(srt)
	return b
}

// q05: local supplier volume — a five-way join; the nation name travels in
// hash-table payloads, and the supplier join uses a composite key
// (l_suppkey, c_nationkey).
func q05(d *Dataset, o QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	selReg := scan(b, d.Region,
		expr.Eq(expr.C(d.Region.Schema(), "r_name"), expr.Str("ASIA")), "r_regionkey")
	buildR, _ := b.Build(selReg, exec.BuildSpec{
		Name: "build(region)", KeyCols: idx(selReg, "r_regionkey"), ExpectedRows: 1,
	})

	selNat := scan(b, d.Nation, nil, "n_regionkey", "n_nationkey", "n_name")
	natAsia := b.Probe(selNat, buildR, exec.ProbeSpec{
		Name: "probe(region)", KeyCols: idx(selNat, "n_regionkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selNat, "n_nationkey", "n_name"),
	})
	buildN, _ := b.Build(natAsia, exec.BuildSpec{
		Name: "build(nation)", KeyCols: idx(natAsia, "n_nationkey"),
		Payload: idx(natAsia, "n_name"), ExpectedRows: 5,
	})

	selCust := scan(b, d.Customer, nil, "c_custkey", "c_nationkey")
	custAsia := b.Probe(selCust, buildN, exec.ProbeSpec{
		Name: "probe(nation)", KeyCols: idx(selCust, "c_nationkey"),
		ProbeProj: idx(selCust, "c_custkey", "c_nationkey"), BuildProj: []int{0},
	})
	buildC, _ := b.Build(custAsia, exec.BuildSpec{
		Name: "build(customer)", KeyCols: idx(custAsia, "c_custkey"),
		Payload:      idx(custAsia, "c_nationkey", "n_name"),
		ExpectedRows: d.numCustomers() / 5,
	})

	os := d.Orders.Schema()
	selOrd := scan(b, d.Orders,
		expr.And(
			expr.Ge(expr.C(os, "o_orderdate"), expr.Date(1994, 1, 1)),
			expr.Lt(expr.C(os, "o_orderdate"), expr.Date(1995, 1, 1)),
		),
		"o_orderkey", "o_custkey")
	ordAsia := b.Probe(selOrd, buildC, exec.ProbeSpec{
		Name: "probe(customer)", KeyCols: idx(selOrd, "o_custkey"),
		ProbeProj: idx(selOrd, "o_orderkey"), BuildProj: []int{0, 1},
	})
	buildO, buildOp := b.Build(ordAsia, exec.BuildSpec{
		Name: "build(orders)", KeyCols: idx(ordAsia, "o_orderkey"),
		Payload:      idx(ordAsia, "c_nationkey", "n_name"),
		ExpectedRows: d.numOrders() / 35,
		BuildBloom:   o.LIP,
	})

	selSupp := scan(b, d.Supplier, nil, "s_suppkey", "s_nationkey")
	buildS, _ := b.Build(selSupp, exec.BuildSpec{
		Name: "build(supplier)", KeyCols: idx(selSupp, "s_suppkey", "s_nationkey"),
		ExpectedRows: d.numSuppliers(),
	})

	ls := d.Lineitem.Schema()
	lineSpec := exec.SelectSpec{Name: "select(lineitem)", Base: d.Lineitem}
	lineSpec.Proj, lineSpec.ProjNames = proj(ls, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	if o.LIP {
		lineSpec.LIPs = []exec.LIPRef{{Build: buildOp, KeyCol: ls.MustColIndex("l_orderkey")}}
	}
	selLine := b.ScanSelect(lineSpec)
	lineOrd := b.Probe(selLine, buildO, exec.ProbeSpec{
		Name: "probe(orders)", KeyCols: idx(selLine, "l_orderkey"),
		ProbeProj: idx(selLine, "l_suppkey", "l_extendedprice", "l_discount"),
		BuildProj: []int{0, 1},
	})
	lineSupp := b.Probe(lineOrd, buildS, exec.ProbeSpec{
		Name:    "probe(supplier)",
		KeyCols: idx(lineOrd, "l_suppkey", "c_nationkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(lineOrd, "l_extendedprice", "l_discount", "n_name"),
	})

	agg := b.Agg(lineSupp, exec.AggOpSpec{
		Name:         "agg(q5)",
		GroupBy:      []expr.Expr{expr.C(lineSupp.Schema, "n_name")},
		GroupByNames: []string{"n_name"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: revenue(lineSupp.Schema, "l_extendedprice", "l_discount"), Name: "revenue"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q5)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "revenue"), Desc: true},
	}})
	b.Collect(srt)
	return b
}

// q06: forecasting revenue change — a single select→scalar-aggregate; the
// dominant operator is the leaf select (Fig. 3).
func q06(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()
	ls := d.Lineitem.Schema()
	sel := scan(b, d.Lineitem,
		expr.And(
			expr.Ge(expr.C(ls, "l_shipdate"), expr.Date(1994, 1, 1)),
			expr.Lt(expr.C(ls, "l_shipdate"), expr.Date(1995, 1, 1)),
			expr.Between(expr.C(ls, "l_discount"), expr.Float(0.05), expr.Float(0.07)),
			expr.Lt(expr.C(ls, "l_quantity"), expr.Float(24)),
		),
		"l_extendedprice", "l_discount")
	agg := b.Agg(sel, exec.AggOpSpec{
		Name: "agg(q6)",
		Aggs: []exec.AggSpec{{
			Func: exec.Sum,
			Arg:  expr.MulE(expr.C(sel.Schema, "l_extendedprice"), expr.C(sel.Schema, "l_discount")),
			Name: "revenue",
		}},
	})
	b.Collect(agg)
	return b
}

// q07: volume shipping — the paper's running example: a select on lineitem
// feeding a cascade of three probes, where the orders hash table is built on
// the entire table (the ~2.4 GB table of Section VI-C) and the supplier hash
// table is small — the two probes of Figs. 9 and 10.
func q07(d *Dataset, o QueryOpts) *engine.Builder {
	b := engine.NewBuilder()
	natPred := expr.InStrings(expr.C(d.Nation.Schema(), "n_name"), "FRANCE", "GERMANY")

	selNat1 := scan(b, d.Nation, natPred, "n_nationkey", "n_name")
	buildN1, _ := b.Build(selNat1, exec.BuildSpec{
		Name: "build(nation1)", KeyCols: idx(selNat1, "n_nationkey"),
		Payload: idx(selNat1, "n_name"), ExpectedRows: 2,
	})
	selSupp := scan(b, d.Supplier, nil, "s_suppkey", "s_nationkey")
	suppNat := b.Probe(selSupp, buildN1, exec.ProbeSpec{
		Name: "probe(nation1)", KeyCols: idx(selSupp, "s_nationkey"),
		ProbeProj: idx(selSupp, "s_suppkey"), BuildProj: []int{0},
		Rename: []string{"s_suppkey", "supp_nation"},
	})
	buildS, buildSOp := b.Build(suppNat, exec.BuildSpec{
		Name: "build(supplier)", KeyCols: idx(suppNat, "s_suppkey"),
		Payload: idx(suppNat, "supp_nation"), ExpectedRows: d.numSuppliers() / 12,
		BuildBloom: o.LIP,
	})

	selNat2 := scan(b, d.Nation, natPred, "n_nationkey", "n_name")
	buildN2, _ := b.Build(selNat2, exec.BuildSpec{
		Name: "build(nation2)", KeyCols: idx(selNat2, "n_nationkey"),
		Payload: idx(selNat2, "n_name"), ExpectedRows: 2,
	})
	selCust := scan(b, d.Customer, nil, "c_custkey", "c_nationkey")
	custNat := b.Probe(selCust, buildN2, exec.ProbeSpec{
		Name: "probe(nation2)", KeyCols: idx(selCust, "c_nationkey"),
		ProbeProj: idx(selCust, "c_custkey"), BuildProj: []int{0},
		Rename: []string{"c_custkey", "cust_nation"},
	})
	buildC, buildCOp := b.Build(custNat, exec.BuildSpec{
		Name: "build(customer)", KeyCols: idx(custNat, "c_custkey"),
		Payload: idx(custNat, "cust_nation"), ExpectedRows: d.numCustomers() / 12,
	})

	// The orders hash table is deliberately built on the ENTIRE table,
	// matching the plan the paper analyzes (its probe is the
	// poor-scalability operator of Fig. 9).
	selOrd := scan(b, d.Orders, nil, "o_orderkey", "o_custkey")
	buildO, _ := b.Build(selOrd, exec.BuildSpec{
		Name: "build(orders)", KeyCols: idx(selOrd, "o_orderkey"),
		Payload: idx(selOrd, "o_custkey"), ExpectedRows: d.numOrders(),
	})

	ls := d.Lineitem.Schema()
	lineSpec := exec.SelectSpec{
		Name: "select(lineitem)", Base: d.Lineitem,
		Pred: expr.Between(expr.C(ls, "l_shipdate"), expr.Date(1995, 1, 1), expr.Date(1996, 12, 31)),
	}
	lineSpec.Proj, lineSpec.ProjNames = proj(ls, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate")
	// LIP needs the supplier hash table's bloom filter before the lineitem
	// scan, but staged execution builds that table only after the first
	// probe — the two are incompatible, so staging wins.
	if o.LIP && !o.Staged {
		lineSpec.LIPs = []exec.LIPRef{{Build: buildSOp, KeyCol: ls.MustColIndex("l_suppkey")}}
	}
	selLine := b.ScanSelect(lineSpec)

	// The cascade probes the whole-table orders hash first (the paper's
	// large, poorly-scaling probe, Section VII-B5), then the small
	// supplier hash, then customer with the nation-pair residual.
	probeOrd := b.Probe(selLine, buildO, exec.ProbeSpec{
		Name: "probe(orders)", KeyCols: idx(selLine, "l_orderkey"),
		ProbeProj: idx(selLine, "l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"),
		BuildProj: []int{0},
	})
	probeSupp := b.Probe(probeOrd, buildS, exec.ProbeSpec{
		Name: "probe(supplier)", KeyCols: idx(probeOrd, "l_suppkey"),
		ProbeProj: idx(probeOrd, "l_extendedprice", "l_discount", "l_shipdate", "o_custkey"),
		BuildProj: []int{0},
	})
	custPay := buildCOp.PayloadSchema()
	probeCust := b.Probe(probeSupp, buildC, exec.ProbeSpec{
		Name: "probe(customer)", KeyCols: idx(probeSupp, "o_custkey"),
		Residual: expr.Or(
			expr.And(
				expr.Eq(expr.C(probeSupp.Schema, "supp_nation"), expr.Str("FRANCE")),
				expr.Eq(expr.C2(custPay, "cust_nation"), expr.Str("GERMANY")),
			),
			expr.And(
				expr.Eq(expr.C(probeSupp.Schema, "supp_nation"), expr.Str("GERMANY")),
				expr.Eq(expr.C2(custPay, "cust_nation"), expr.Str("FRANCE")),
			),
		),
		ProbeProj: idx(probeSupp, "l_extendedprice", "l_discount", "l_shipdate", "supp_nation"),
		BuildProj: []int{0},
	})

	if o.Staged {
		// One join at a time (Table II's high-UoT execution): each hash
		// table is built only after the previous probe completed, so at
		// most one cascade hash table is live at any moment.
		b.Gate(probeOrd, buildS)
		b.Gate(probeSupp, buildC)
	}

	ps := probeCust.Schema
	agg := b.Agg(probeCust, exec.AggOpSpec{
		Name: "agg(q7)",
		GroupBy: []expr.Expr{
			expr.C(ps, "supp_nation"), expr.C(ps, "cust_nation"), expr.Year(expr.C(ps, "l_shipdate")),
		},
		GroupByNames: []string{"supp_nation", "cust_nation", "l_year"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: revenue(ps, "l_extendedprice", "l_discount"), Name: "revenue"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q7)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "supp_nation")},
		{Key: expr.C(agg.Schema, "cust_nation")},
		{Key: expr.C(agg.Schema, "l_year")},
	}})
	b.Collect(srt)
	return b
}

// q08: national market share — semi-join reductions down to a CASE-based
// two-sum aggregate.
func q08(d *Dataset, o QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	selReg := scan(b, d.Region,
		expr.Eq(expr.C(d.Region.Schema(), "r_name"), expr.Str("AMERICA")), "r_regionkey")
	buildR, _ := b.Build(selReg, exec.BuildSpec{
		Name: "build(region)", KeyCols: idx(selReg, "r_regionkey"), ExpectedRows: 1,
	})
	selNatAm := scan(b, d.Nation, nil, "n_regionkey", "n_nationkey")
	natAm := b.Probe(selNatAm, buildR, exec.ProbeSpec{
		Name: "probe(region)", KeyCols: idx(selNatAm, "n_regionkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selNatAm, "n_nationkey"),
	})
	buildNAm, _ := b.Build(natAm, exec.BuildSpec{
		Name: "build(nation_am)", KeyCols: idx(natAm, "n_nationkey"), ExpectedRows: 5,
	})
	selCust := scan(b, d.Customer, nil, "c_nationkey", "c_custkey")
	custAm := b.Probe(selCust, buildNAm, exec.ProbeSpec{
		Name: "probe(nation_am)", KeyCols: idx(selCust, "c_nationkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selCust, "c_custkey"),
	})
	buildC, _ := b.Build(custAm, exec.BuildSpec{
		Name: "build(customer)", KeyCols: idx(custAm, "c_custkey"),
		ExpectedRows: d.numCustomers() / 5,
	})

	os := d.Orders.Schema()
	selOrd := scan(b, d.Orders,
		expr.Between(expr.C(os, "o_orderdate"), expr.Date(1995, 1, 1), expr.Date(1996, 12, 31)),
		"o_custkey", "o_orderkey", "o_orderdate")
	ordAm := b.Probe(selOrd, buildC, exec.ProbeSpec{
		Name: "probe(customer)", KeyCols: idx(selOrd, "o_custkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selOrd, "o_orderkey", "o_orderdate"),
	})
	buildO, buildOOp := b.Build(ordAm, exec.BuildSpec{
		Name: "build(orders)", KeyCols: idx(ordAm, "o_orderkey"),
		Payload: idx(ordAm, "o_orderdate"), ExpectedRows: d.numOrders() / 12,
		BuildBloom: o.LIP,
	})

	selNatAll := scan(b, d.Nation, nil, "n_nationkey", "n_name")
	buildNAll, _ := b.Build(selNatAll, exec.BuildSpec{
		Name: "build(nation_all)", KeyCols: idx(selNatAll, "n_nationkey"),
		Payload: idx(selNatAll, "n_name"), ExpectedRows: 25,
	})
	selSupp := scan(b, d.Supplier, nil, "s_suppkey", "s_nationkey")
	suppNat := b.Probe(selSupp, buildNAll, exec.ProbeSpec{
		Name: "probe(nation_all)", KeyCols: idx(selSupp, "s_nationkey"),
		ProbeProj: idx(selSupp, "s_suppkey"), BuildProj: []int{0},
	})
	buildS, _ := b.Build(suppNat, exec.BuildSpec{
		Name: "build(supplier)", KeyCols: idx(suppNat, "s_suppkey"),
		Payload: idx(suppNat, "n_name"), ExpectedRows: d.numSuppliers(),
	})

	ps0 := d.Part.Schema()
	selPart := scan(b, d.Part,
		expr.Eq(expr.C(ps0, "p_type"), expr.Str("ECONOMY ANODIZED STEEL")), "p_partkey")
	buildP, buildPOp := b.Build(selPart, exec.BuildSpec{
		Name: "build(part)", KeyCols: idx(selPart, "p_partkey"),
		ExpectedRows: d.numParts() / 150, BuildBloom: o.LIP,
	})

	ls := d.Lineitem.Schema()
	lineSpec := exec.SelectSpec{Name: "select(lineitem)", Base: d.Lineitem}
	lineSpec.Proj, lineSpec.ProjNames = proj(ls, "l_partkey", "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount")
	if o.LIP {
		lineSpec.LIPs = []exec.LIPRef{
			{Build: buildPOp, KeyCol: ls.MustColIndex("l_partkey")},
			{Build: buildOOp, KeyCol: ls.MustColIndex("l_orderkey")},
		}
	}
	selLine := b.ScanSelect(lineSpec)
	linePart := b.Probe(selLine, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(selLine, "l_partkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selLine, "l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"),
	})
	lineOrd := b.Probe(linePart, buildO, exec.ProbeSpec{
		Name: "probe(orders)", KeyCols: idx(linePart, "l_orderkey"),
		ProbeProj: idx(linePart, "l_suppkey", "l_extendedprice", "l_discount"),
		BuildProj: []int{0},
	})
	lineSupp := b.Probe(lineOrd, buildS, exec.ProbeSpec{
		Name: "probe(supplier)", KeyCols: idx(lineOrd, "l_suppkey"),
		ProbeProj: idx(lineOrd, "l_extendedprice", "l_discount", "o_orderdate"),
		BuildProj: []int{0},
		Rename:    []string{"l_extendedprice", "l_discount", "o_orderdate", "nation"},
	})

	s := lineSupp.Schema
	vol := revenue(s, "l_extendedprice", "l_discount")
	agg := b.Agg(lineSupp, exec.AggOpSpec{
		Name:         "agg(q8)",
		GroupBy:      []expr.Expr{expr.Year(expr.C(s, "o_orderdate"))},
		GroupByNames: []string{"o_year"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Name: "brazil_volume",
				Arg: expr.Case(expr.Float(0), expr.When{
					Cond: expr.Eq(expr.C(s, "nation"), expr.Str("BRAZIL")), Then: vol,
				})},
			{Func: exec.Sum, Arg: vol, Name: "total_volume"},
		},
	})
	share := b.Select(agg, exec.SelectSpec{
		Name: "compute(mkt_share)",
		Proj: []expr.Expr{
			expr.C(agg.Schema, "o_year"),
			expr.DivE(expr.C(agg.Schema, "brazil_volume"), expr.C(agg.Schema, "total_volume")),
		},
		ProjNames: []string{"o_year", "mkt_share"},
	})
	srt := b.Sort(share, exec.SortSpec{Name: "sort(q8)", Terms: []exec.SortTerm{
		{Key: expr.C(share.Schema, "o_year")},
	}})
	b.Collect(srt)
	return b
}
