package tpch

import (
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/types"
)

func init() {
	register(10, q10)
	register(13, q13)
	register(14, q14)
	register(15, q15)
	register(19, q19)
	register(21, q21)
	register(22, q22)
}

// q10: returned item reporting — customer attributes travel in hash-table
// payloads down to the lineitem probe.
func q10(d *Dataset, o QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	selNat := scan(b, d.Nation, nil, "n_nationkey", "n_name")
	buildN, _ := b.Build(selNat, exec.BuildSpec{
		Name: "build(nation)", KeyCols: idx(selNat, "n_nationkey"),
		Payload: idx(selNat, "n_name"), ExpectedRows: 25,
	})
	selCust := scan(b, d.Customer, nil,
		"c_nationkey", "c_custkey", "c_name", "c_acctbal", "c_phone", "c_address", "c_comment")
	custNat := b.Probe(selCust, buildN, exec.ProbeSpec{
		Name:    "probe(nation)",
		KeyCols: idx(selCust, "c_nationkey"),
		ProbeProj: idx(selCust,
			"c_custkey", "c_name", "c_acctbal", "c_phone", "c_address", "c_comment"),
		BuildProj: []int{0},
	})
	buildC, _ := b.Build(custNat, exec.BuildSpec{
		Name:    "build(customer)",
		KeyCols: idx(custNat, "c_custkey"),
		Payload: idx(custNat,
			"c_custkey", "c_name", "c_acctbal", "c_phone", "c_address", "c_comment", "n_name"),
		ExpectedRows: d.numCustomers(),
	})

	os := d.Orders.Schema()
	selOrd := scan(b, d.Orders,
		expr.And(
			expr.Ge(expr.C(os, "o_orderdate"), expr.Date(1993, 10, 1)),
			expr.Lt(expr.C(os, "o_orderdate"), expr.Date(1994, 1, 1)),
		),
		"o_custkey", "o_orderkey")
	ordCust := b.Probe(selOrd, buildC, exec.ProbeSpec{
		Name: "probe(customer)", KeyCols: idx(selOrd, "o_custkey"),
		ProbeProj: idx(selOrd, "o_orderkey"),
		BuildProj: []int{0, 1, 2, 3, 4, 5, 6},
	})
	buildO, buildOOp := b.Build(ordCust, exec.BuildSpec{
		Name:    "build(orders)",
		KeyCols: idx(ordCust, "o_orderkey"),
		Payload: idx(ordCust,
			"c_custkey", "c_name", "c_acctbal", "c_phone", "c_address", "c_comment", "n_name"),
		ExpectedRows: d.numOrders() / 25,
		BuildBloom:   o.LIP,
	})

	ls := d.Lineitem.Schema()
	lineSpec := exec.SelectSpec{
		Name: "select(lineitem)", Base: d.Lineitem,
		Pred: expr.Eq(expr.C(ls, "l_returnflag"), expr.Str("R")),
	}
	lineSpec.Proj, lineSpec.ProjNames = proj(ls, "l_orderkey", "l_extendedprice", "l_discount")
	if o.LIP {
		lineSpec.LIPs = []exec.LIPRef{{Build: buildOOp, KeyCol: ls.MustColIndex("l_orderkey")}}
	}
	selLine := b.ScanSelect(lineSpec)
	lineOrd := b.Probe(selLine, buildO, exec.ProbeSpec{
		Name: "probe(orders)", KeyCols: idx(selLine, "l_orderkey"),
		ProbeProj: idx(selLine, "l_extendedprice", "l_discount"),
		BuildProj: []int{0, 1, 2, 3, 4, 5, 6},
	})

	s := lineOrd.Schema
	agg := b.Agg(lineOrd, exec.AggOpSpec{
		Name: "agg(q10)",
		GroupBy: []expr.Expr{
			expr.C(s, "c_custkey"), expr.C(s, "c_name"), expr.C(s, "c_acctbal"),
			expr.C(s, "c_phone"), expr.C(s, "n_name"), expr.C(s, "c_address"), expr.C(s, "c_comment"),
		},
		GroupByNames: []string{"c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address", "c_comment"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: revenue(s, "l_extendedprice", "l_discount"), Name: "revenue"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q10)", Limit: 20, Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "revenue"), Desc: true},
	}})
	b.Collect(srt)
	return b
}

// q13: customer distribution — an aggregate on orders left-outer-joined back
// to customer; the zero-fill of the outer join supplies the count-0 bucket.
func q13(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()
	os := d.Orders.Schema()

	selOrd := scan(b, d.Orders,
		expr.NotLike(expr.C(os, "o_comment"), "%special%requests%"),
		"o_custkey")
	aggOrd := b.Agg(selOrd, exec.AggOpSpec{
		Name:         "agg(orders)",
		GroupBy:      []expr.Expr{expr.C(selOrd.Schema, "o_custkey")},
		GroupByNames: []string{"o_custkey"},
		Aggs:         []exec.AggSpec{{Func: exec.Count, Name: "c_count"}},
	})
	buildA, _ := b.Build(aggOrd, exec.BuildSpec{
		Name: "build(ordcount)", KeyCols: idx(aggOrd, "o_custkey"),
		Payload: idx(aggOrd, "c_count"), ExpectedRows: d.numCustomers(),
	})

	selCust := scan(b, d.Customer, nil, "c_custkey")
	probe := b.Probe(selCust, buildA, exec.ProbeSpec{
		Name: "probe(ordcount)", KeyCols: idx(selCust, "c_custkey"), JoinType: exec.LeftOuter,
		ProbeProj: idx(selCust, "c_custkey"), BuildProj: []int{0},
	})

	agg := b.Agg(probe, exec.AggOpSpec{
		Name:         "agg(q13)",
		GroupBy:      []expr.Expr{expr.C(probe.Schema, "c_count")},
		GroupByNames: []string{"c_count"},
		Aggs:         []exec.AggSpec{{Func: exec.Count, Name: "custdist"}},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q13)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "custdist"), Desc: true},
		{Key: expr.C(agg.Schema, "c_count"), Desc: true},
	}})
	b.Collect(srt)
	return b
}

// q14: promotion effect — lineitem probes an unfiltered part hash table and
// a CASE splits the revenue sum.
func q14(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	selPart := scan(b, d.Part, nil, "p_partkey", "p_type")
	buildP, _ := b.Build(selPart, exec.BuildSpec{
		Name: "build(part)", KeyCols: idx(selPart, "p_partkey"),
		Payload: idx(selPart, "p_type"), ExpectedRows: d.numParts(),
	})

	ls := d.Lineitem.Schema()
	selLine := scan(b, d.Lineitem,
		expr.And(
			expr.Ge(expr.C(ls, "l_shipdate"), expr.Date(1995, 9, 1)),
			expr.Lt(expr.C(ls, "l_shipdate"), expr.Date(1995, 10, 1)),
		),
		"l_partkey", "l_extendedprice", "l_discount")
	probe := b.Probe(selLine, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(selLine, "l_partkey"),
		ProbeProj: idx(selLine, "l_extendedprice", "l_discount"),
		BuildProj: []int{0},
	})

	s := probe.Schema
	vol := revenue(s, "l_extendedprice", "l_discount")
	agg := b.Agg(probe, exec.AggOpSpec{
		Name: "agg(q14)",
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Name: "promo",
				Arg: expr.Case(expr.Float(0), expr.When{
					Cond: expr.Like(expr.C(s, "p_type"), "PROMO%"), Then: vol,
				})},
			{Func: exec.Sum, Arg: vol, Name: "total"},
		},
	})
	out := b.Select(agg, exec.SelectSpec{
		Name: "compute(promo_revenue)",
		Proj: []expr.Expr{expr.MulE(expr.Float(100),
			expr.DivE(expr.C(agg.Schema, "promo"), expr.C(agg.Schema, "total")))},
		ProjNames: []string{"promo_revenue"},
	})
	b.Collect(out)
	return b
}

// q15: top supplier — the revenue aggregate fans out to both a scalar MAX
// and the filtered join input (the one plan with an intermediate consumed by
// two operators).
func q15(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()
	ls := d.Lineitem.Schema()

	selLine := scan(b, d.Lineitem,
		expr.And(
			expr.Ge(expr.C(ls, "l_shipdate"), expr.Date(1996, 1, 1)),
			expr.Lt(expr.C(ls, "l_shipdate"), expr.Date(1996, 4, 1)),
		),
		"l_suppkey", "l_extendedprice", "l_discount")
	rev := b.Agg(selLine, exec.AggOpSpec{
		Name:         "agg(revenue)",
		GroupBy:      []expr.Expr{expr.C(selLine.Schema, "l_suppkey")},
		GroupByNames: []string{"supplier_no"},
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: revenue(selLine.Schema, "l_extendedprice", "l_discount"), Name: "total_revenue"},
		},
	})
	maxRev := b.Agg(rev, exec.AggOpSpec{
		Name: "agg(max)",
		Aggs: []exec.AggSpec{{Func: exec.Max, Arg: expr.C(rev.Schema, "total_revenue"), Name: "m"}},
	})
	slot := b.Scalar(maxRev)

	top := b.Select(rev, exec.SelectSpec{
		Name:      "filter(top)",
		Pred:      expr.Eq(expr.C(rev.Schema, "total_revenue"), expr.Param(slot, types.Float64)),
		Proj:      []expr.Expr{expr.C(rev.Schema, "supplier_no"), expr.C(rev.Schema, "total_revenue")},
		ProjNames: []string{"supplier_no", "total_revenue"},
	})
	b.Gate(maxRev, top)
	buildT, _ := b.Build(top, exec.BuildSpec{
		Name: "build(top)", KeyCols: idx(top, "supplier_no"),
		Payload: idx(top, "total_revenue"), ExpectedRows: 16,
	})

	selSupp := scan(b, d.Supplier, nil, "s_suppkey", "s_name", "s_address", "s_phone")
	probe := b.Probe(selSupp, buildT, exec.ProbeSpec{
		Name: "probe(top)", KeyCols: idx(selSupp, "s_suppkey"),
		ProbeProj: idx(selSupp, "s_suppkey", "s_name", "s_address", "s_phone"),
		BuildProj: []int{0},
	})
	srt := b.Sort(probe, exec.SortSpec{Name: "sort(q15)", Terms: []exec.SortTerm{
		{Key: expr.C(probe.Schema, "s_suppkey")},
	}})
	b.Collect(srt)
	return b
}

// q19: discounted revenue — a disjunctive residual predicate over both join
// sides, the paper's select→probe microbenchmark shape.
func q19(d *Dataset, o QueryOpts) *engine.Builder {
	b := engine.NewBuilder()
	ps := d.Part.Schema()

	selPart := scan(b, d.Part,
		expr.Between(expr.C(ps, "p_size"), expr.Int(1), expr.Int(15)),
		"p_partkey", "p_brand", "p_container", "p_size")
	buildP, buildPOp := b.Build(selPart, exec.BuildSpec{
		Name:         "build(part)",
		KeyCols:      idx(selPart, "p_partkey"),
		Payload:      idx(selPart, "p_brand", "p_container", "p_size"),
		ExpectedRows: d.numParts() / 3, BuildBloom: o.LIP,
	})

	ls := d.Lineitem.Schema()
	lineSpec := exec.SelectSpec{
		Name: "select(lineitem)", Base: d.Lineitem,
		Pred: expr.And(
			expr.InStrings(expr.C(ls, "l_shipmode"), "AIR", "REG AIR"),
			expr.Eq(expr.C(ls, "l_shipinstruct"), expr.Str("DELIVER IN PERSON")),
		),
	}
	lineSpec.Proj, lineSpec.ProjNames = proj(ls, "l_partkey", "l_quantity", "l_extendedprice", "l_discount")
	if o.LIP {
		lineSpec.LIPs = []exec.LIPRef{{Build: buildPOp, KeyCol: ls.MustColIndex("l_partkey")}}
	}
	selLine := b.ScanSelect(lineSpec)

	pay := buildPOp.PayloadSchema()
	qty := expr.C(selLine.Schema, "l_quantity")
	branch := func(brand string, containers []string, qlo, qhi float64, smax int64) expr.Expr {
		return expr.And(
			expr.Eq(expr.C2(pay, "p_brand"), expr.Str(brand)),
			expr.InStrings(expr.C2(pay, "p_container"), containers...),
			expr.Between(qty, expr.Float(qlo), expr.Float(qhi)),
			expr.Le(expr.C2(pay, "p_size"), expr.Int(smax)),
		)
	}
	probe := b.Probe(selLine, buildP, exec.ProbeSpec{
		Name: "probe(part)", KeyCols: idx(selLine, "l_partkey"),
		Residual: expr.Or(
			branch("Brand#12", []string{"SM CASE", "SM BOX", "SM PACK", "SM PKG"}, 1, 11, 5),
			branch("Brand#23", []string{"MED BAG", "MED BOX", "MED PKG", "MED PACK"}, 10, 20, 10),
			branch("Brand#34", []string{"LG CASE", "LG BOX", "LG PACK", "LG PKG"}, 20, 30, 15),
		),
		ProbeProj: idx(selLine, "l_extendedprice", "l_discount"),
	})

	agg := b.Agg(probe, exec.AggOpSpec{
		Name: "agg(q19)",
		Aggs: []exec.AggSpec{
			{Func: exec.Sum, Arg: revenue(probe.Schema, "l_extendedprice", "l_discount"), Name: "revenue"},
		},
	})
	b.Collect(agg)
	return b
}

// q21: suppliers who kept orders waiting — EXISTS and NOT EXISTS over
// lineitem become semi and anti joins with suppkey-inequality residuals.
func q21(d *Dataset, o QueryOpts) *engine.Builder {
	b := engine.NewBuilder()

	selNat := scan(b, d.Nation,
		expr.Eq(expr.C(d.Nation.Schema(), "n_name"), expr.Str("SAUDI ARABIA")),
		"n_nationkey")
	buildN, _ := b.Build(selNat, exec.BuildSpec{
		Name: "build(nation)", KeyCols: idx(selNat, "n_nationkey"), ExpectedRows: 1,
	})
	selSupp := scan(b, d.Supplier, nil, "s_nationkey", "s_suppkey", "s_name")
	suppSA := b.Probe(selSupp, buildN, exec.ProbeSpec{
		Name: "probe(nation)", KeyCols: idx(selSupp, "s_nationkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(selSupp, "s_suppkey", "s_name"),
	})
	buildS, buildSOp := b.Build(suppSA, exec.BuildSpec{
		Name: "build(supplier)", KeyCols: idx(suppSA, "s_suppkey"),
		Payload: idx(suppSA, "s_name"), ExpectedRows: d.numSuppliers() / 25,
		BuildBloom: o.LIP,
	})

	selOrd := scan(b, d.Orders,
		expr.Eq(expr.C(d.Orders.Schema(), "o_orderstatus"), expr.Str("F")),
		"o_orderkey")
	buildO, _ := b.Build(selOrd, exec.BuildSpec{
		Name: "build(orders)", KeyCols: idx(selOrd, "o_orderkey"),
		ExpectedRows: d.numOrders() / 2,
	})

	ls := d.Lineitem.Schema()
	late := expr.Gt(expr.C(ls, "l_receiptdate"), expr.C(ls, "l_commitdate"))

	l2 := scan(b, d.Lineitem, nil, "l_orderkey", "l_suppkey")
	buildL2, buildL2Op := b.Build(l2, exec.BuildSpec{
		Name: "build(l2)", KeyCols: idx(l2, "l_orderkey"),
		Payload: idx(l2, "l_suppkey"), ExpectedRows: d.numOrders() * 4,
	})
	l3 := scan(b, d.Lineitem, late, "l_orderkey", "l_suppkey")
	buildL3, buildL3Op := b.Build(l3, exec.BuildSpec{
		Name: "build(l3)", KeyCols: idx(l3, "l_orderkey"),
		Payload: idx(l3, "l_suppkey"), ExpectedRows: d.numOrders() * 2,
	})

	l1Spec := exec.SelectSpec{Name: "select(lineitem)", Base: d.Lineitem, Pred: late}
	l1Spec.Proj, l1Spec.ProjNames = proj(ls, "l_orderkey", "l_suppkey")
	if o.LIP {
		l1Spec.LIPs = []exec.LIPRef{{Build: buildSOp, KeyCol: ls.MustColIndex("l_suppkey")}}
	}
	l1 := b.ScanSelect(l1Spec)

	withName := b.Probe(l1, buildS, exec.ProbeSpec{
		Name: "probe(supplier)", KeyCols: idx(l1, "l_suppkey"),
		ProbeProj: idx(l1, "l_orderkey", "l_suppkey"), BuildProj: []int{0},
	})
	fOrders := b.Probe(withName, buildO, exec.ProbeSpec{
		Name: "probe(orders)", KeyCols: idx(withName, "l_orderkey"), JoinType: exec.LeftSemi,
		ProbeProj: idx(withName, "l_orderkey", "l_suppkey", "s_name"),
	})
	exists2 := b.Probe(fOrders, buildL2, exec.ProbeSpec{
		Name: "probe(l2)", KeyCols: idx(fOrders, "l_orderkey"), JoinType: exec.LeftSemi,
		Residual: expr.Ne(expr.C2(buildL2Op.PayloadSchema(), "l_suppkey"),
			expr.C(fOrders.Schema, "l_suppkey")),
		ProbeProj: idx(fOrders, "l_orderkey", "l_suppkey", "s_name"),
	})
	notExists3 := b.Probe(exists2, buildL3, exec.ProbeSpec{
		Name: "probe(l3)", KeyCols: idx(exists2, "l_orderkey"), JoinType: exec.LeftAnti,
		Residual: expr.Ne(expr.C2(buildL3Op.PayloadSchema(), "l_suppkey"),
			expr.C(exists2.Schema, "l_suppkey")),
		ProbeProj: idx(exists2, "s_name"),
	})

	agg := b.Agg(notExists3, exec.AggOpSpec{
		Name:         "agg(q21)",
		GroupBy:      []expr.Expr{expr.C(notExists3.Schema, "s_name")},
		GroupByNames: []string{"s_name"},
		Aggs:         []exec.AggSpec{{Func: exec.Count, Name: "numwait"}},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q21)", Limit: 100, Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "numwait"), Desc: true},
		{Key: expr.C(agg.Schema, "s_name")},
	}})
	b.Collect(srt)
	return b
}

// q22: global sales opportunity — a scalar AVG subquery parameterizes the
// customer select, and NOT EXISTS(orders) is an anti join.
func q22(d *Dataset, _ QueryOpts) *engine.Builder {
	b := engine.NewBuilder()
	cs := d.Customer.Schema()
	codes := []string{"13", "31", "23", "29", "30", "18", "17"}
	inCodes := expr.InStrings(expr.Substr(expr.C(cs, "c_phone"), 1, 2), codes...)

	selAvg := scanCustomerAs(b, d, "select(cust_avg)",
		expr.And(expr.Gt(expr.C(cs, "c_acctbal"), expr.Float(0)), inCodes),
		"c_acctbal")
	avgBal := b.Agg(selAvg, exec.AggOpSpec{
		Name: "agg(avg)",
		Aggs: []exec.AggSpec{{Func: exec.Avg, Arg: expr.C(selAvg.Schema, "c_acctbal"), Name: "a"}},
	})
	slot := b.Scalar(avgBal)

	selOrd := scan(b, d.Orders, nil, "o_custkey")
	buildO, _ := b.Build(selOrd, exec.BuildSpec{
		Name: "build(orders)", KeyCols: idx(selOrd, "o_custkey"),
		ExpectedRows: d.numOrders(),
	})

	selCust := b.ScanSelect(exec.SelectSpec{
		Name: "select(customer)", Base: d.Customer,
		Pred: expr.And(inCodes, expr.Gt(expr.C(cs, "c_acctbal"), expr.Param(slot, types.Float64))),
		Proj: []expr.Expr{
			expr.C(cs, "c_custkey"),
			expr.Substr(expr.C(cs, "c_phone"), 1, 2),
			expr.C(cs, "c_acctbal"),
		},
		ProjNames: []string{"c_custkey", "cntrycode", "c_acctbal"},
	})
	b.Gate(avgBal, selCust)
	anti := b.Probe(selCust, buildO, exec.ProbeSpec{
		Name: "probe(orders)", KeyCols: idx(selCust, "c_custkey"), JoinType: exec.LeftAnti,
		ProbeProj: idx(selCust, "cntrycode", "c_acctbal"),
	})

	agg := b.Agg(anti, exec.AggOpSpec{
		Name:         "agg(q22)",
		GroupBy:      []expr.Expr{expr.C(anti.Schema, "cntrycode")},
		GroupByNames: []string{"cntrycode"},
		Aggs: []exec.AggSpec{
			{Func: exec.Count, Name: "numcust"},
			{Func: exec.Sum, Arg: expr.C(anti.Schema, "c_acctbal"), Name: "totacctbal"},
		},
	})
	srt := b.Sort(agg, exec.SortSpec{Name: "sort(q22)", Terms: []exec.SortTerm{
		{Key: expr.C(agg.Schema, "cntrycode")},
	}})
	b.Collect(srt)
	return b
}

// scanCustomerAs is scan over customer with an explicit operator name (q22
// scans the table twice and the stats need distinct names).
func scanCustomerAs(b *engine.Builder, d *Dataset, name string, pred expr.Expr, cols ...string) *engine.Node {
	es, names := proj(d.Customer.Schema(), cols...)
	return b.ScanSelect(exec.SelectSpec{
		Name: name, Base: d.Customer, Pred: pred, Proj: es, ProjNames: names,
	})
}
