package trace

import (
	"sync"
	"testing"
	"time"
)

// TestNilTracerIsNoOp exercises every method on a nil *Tracer: the disabled
// tracer must be callable from instrumented code without any guard.
func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	if got := tr.Now(); got != 0 {
		t.Fatalf("nil Now() = %d, want 0", got)
	}
	if got := tr.Since(time.Now()); got != 0 {
		t.Fatalf("nil Since() = %d, want 0", got)
	}
	tr.StartRun("x")
	tr.EndRun(true)
	tr.SetWorkers(4)
	tr.RegisterOp(0, "op")
	tr.RegisterEdge(0, EdgeInfo{})
	tr.Span(Event{})
	tr.Edge(Event{}, 1)
	tr.Mark(MarkRetry, Event{})
	if ev := tr.Events(); ev != nil {
		t.Fatalf("nil Events() = %v, want nil", ev)
	}
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("nil Dropped() = %d, want 0", d)
	}
	if n := tr.OpName(0, 0); n != "" {
		t.Fatalf("nil OpName() = %q, want empty", n)
	}
	m := tr.Snapshot()
	if m.CapturedEvents != 0 || len(m.Runs) != 0 {
		t.Fatalf("nil Snapshot() = %+v, want empty", m)
	}
}

func TestRegistrationAndOpName(t *testing.T) {
	tr := New(16)
	tr.StartRun("first")
	tr.RegisterOp(0, "select")
	tr.RegisterOp(2, "probe") // sparse ids must work
	tr.StartRun("second")
	tr.RegisterOp(0, "agg")
	if got := tr.OpName(0, 0); got != "select" {
		t.Fatalf("OpName(0,0) = %q, want select", got)
	}
	if got := tr.OpName(0, 2); got != "probe" {
		t.Fatalf("OpName(0,2) = %q, want probe", got)
	}
	if got := tr.OpName(0, 1); got != "" {
		t.Fatalf("OpName(0,1) = %q, want empty (never registered)", got)
	}
	if got := tr.OpName(1, 0); got != "agg" {
		t.Fatalf("OpName(1,0) = %q, want agg", got)
	}
	if got := tr.OpName(7, 0); got != "" {
		t.Fatalf("OpName(7,0) = %q, want empty (unknown run)", got)
	}
}

// TestAutoOpenRun checks RegisterOp/RegisterEdge/SetWorkers open an unlabeled
// section when StartRun was not called first.
func TestAutoOpenRun(t *testing.T) {
	tr := New(16)
	tr.RegisterOp(0, "lone")
	tr.Span(Event{Op: 0, StartNS: 1, EndNS: 2})
	m := tr.Snapshot()
	if len(m.Runs) != 1 {
		t.Fatalf("got %d runs, want 1 auto-opened", len(m.Runs))
	}
	if m.Runs[0].Label != "" {
		t.Fatalf("auto-opened run has label %q", m.Runs[0].Label)
	}
	if len(m.Runs[0].Ops) != 1 || m.Runs[0].Ops[0].Spans != 1 {
		t.Fatalf("auto-opened run aggregates = %+v", m.Runs[0].Ops)
	}
}

func TestSpanAggregates(t *testing.T) {
	tr := New(64)
	tr.StartRun("q")
	tr.RegisterOp(0, "select")
	tr.RegisterOp(1, "probe")

	// Two successful attempts and one failed+retried attempt on op 0.
	tr.Span(Event{Op: 0, Worker: 0, Attempt: 1, Batch: -1, EnqueueNS: 10, StartNS: 100, EndNS: 300, Rows: 5, RowsOut: 3})
	tr.Span(Event{Op: 0, Worker: 1, Attempt: 1, Batch: 0, EnqueueNS: 50, StartNS: 60, EndNS: 90, Rows: 7, RowsOut: 7, Demotions: 1})
	tr.Span(Event{Op: 0, Worker: 0, Attempt: 1, Batch: -1, Flags: FlagFailed | FlagRetried, StartNS: 400, EndNS: 450, Rows: 99, RowsOut: 99})
	tr.EndRun(false)

	m := tr.Snapshot()
	if len(m.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(m.Runs))
	}
	ops := m.Runs[0].Ops
	if len(ops) != 2 {
		t.Fatalf("ops = %d, want 2", len(ops))
	}
	o := ops[0]
	if o.Name != "select" || o.Spans != 3 || o.Failed != 1 || o.Retries != 1 {
		t.Fatalf("select counts = %+v", o)
	}
	// Failed attempts contribute busy time but not rows.
	if o.Rows != 12 || o.RowsOut != 10 {
		t.Fatalf("select rows = %d/%d, want 12/10 (failed attempt excluded)", o.Rows, o.RowsOut)
	}
	if o.BusyNS != (300-100)+(90-60)+(450-400) {
		t.Fatalf("select busyNS = %d", o.BusyNS)
	}
	if o.QueueNS != (100-10)+(60-50) {
		t.Fatalf("select queueNS = %d", o.QueueNS)
	}
	if o.Demotions != 1 {
		t.Fatalf("select demotions = %d", o.Demotions)
	}
	if ops[1].Spans != 0 {
		t.Fatalf("probe spans = %d, want 0", ops[1].Spans)
	}
	if m.Runs[0].WallNS <= 0 {
		t.Fatalf("wallNS = %d, want > 0 after EndRun", m.Runs[0].WallNS)
	}

	// The recorded span events carry the forced Kind/Edge.
	for _, e := range tr.Events() {
		if e.Kind == KindSpan && e.Edge != -1 {
			t.Fatalf("span event Edge = %d, want -1", e.Edge)
		}
	}
}

func TestEdgeAggregates(t *testing.T) {
	tr := New(64)
	tr.StartRun("q")
	tr.RegisterEdge(0, EdgeInfo{From: 0, To: 1, FromName: "select", ToName: "probe", Pipelined: true, UoT: 4})
	tr.RegisterEdge(1, EdgeInfo{From: 1, To: 2, FromName: "probe", ToName: "agg", Pipelined: true, UoT: 4})

	tr.Edge(Event{Edge: 0, Buffered: 2, UoT: 4, StallNS: 0}, 0)   // buffering sample
	tr.Edge(Event{Edge: 0, Buffered: 0, UoT: 4, StallNS: 500}, 4) // delivery
	tr.Edge(Event{Edge: 0, Buffered: 3, UoT: 8, StallNS: 0}, 0)   // raised UoT observed

	m := tr.Snapshot()
	e := m.Runs[0].Edges[0]
	if e.From != "select" || e.To != "probe" || !e.Pipelined {
		t.Fatalf("edge info = %+v", e)
	}
	if e.Samples != 3 || e.Batches != 1 || e.Blocks != 4 {
		t.Fatalf("edge counts = samples %d batches %d blocks %d", e.Samples, e.Batches, e.Blocks)
	}
	if e.MaxBuffered != 3 {
		t.Fatalf("maxBuffered = %d, want 3", e.MaxBuffered)
	}
	if e.StallNS != 500 {
		t.Fatalf("stallNS = %d, want 500", e.StallNS)
	}
	if e.UoT != 8 {
		t.Fatalf("UoT = %d, want 8 (last sample wins)", e.UoT)
	}
	// Edge 1 registered but never sampled: initial UoT reported.
	if e1 := m.Runs[0].Edges[1]; e1.Samples != 0 || e1.UoT != 4 {
		t.Fatalf("idle edge = %+v", e1)
	}
}

func TestRingWraparound(t *testing.T) {
	const cap = 8
	tr := New(cap)
	tr.StartRun("wrap")
	tr.RegisterOp(0, "op")
	const total = 20
	for i := 0; i < total; i++ {
		tr.Span(Event{Op: 0, StartNS: int64(i), EndNS: int64(i) + 1, Rows: 1})
	}
	ev := tr.Events()
	if len(ev) != cap {
		t.Fatalf("retained %d events, want %d", len(ev), cap)
	}
	if got := tr.Dropped(); got != total-cap {
		t.Fatalf("dropped = %d, want %d", got, total-cap)
	}
	// Oldest-first: the survivors are the last cap spans in order.
	for i, e := range ev {
		if want := int64(total - cap + i); e.StartNS != want {
			t.Fatalf("event %d StartNS = %d, want %d", i, e.StartNS, want)
		}
	}
	// Aggregates are exact despite the overwrites.
	m := tr.Snapshot()
	if m.CapturedEvents != cap || m.DroppedEvents != total-cap {
		t.Fatalf("snapshot counts = %d/%d", m.CapturedEvents, m.DroppedEvents)
	}
	if o := m.Runs[0].Ops[0]; o.Spans != total || o.Rows != total {
		t.Fatalf("aggregate spans/rows = %d/%d, want %d despite ring overflow", o.Spans, o.Rows, total)
	}
}

func TestMultipleRunSections(t *testing.T) {
	tr := New(64)
	for i, label := range []string{"uot=2", "uot=16"} {
		tr.StartRun(label)
		tr.SetWorkers(2)
		tr.RegisterOp(0, "select")
		tr.Span(Event{Op: 0, StartNS: 1, EndNS: 2})
		tr.EndRun(i == 1) // second run "fails"
	}
	m := tr.Snapshot()
	if len(m.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(m.Runs))
	}
	if m.Runs[0].Label != "uot=2" || m.Runs[1].Label != "uot=16" {
		t.Fatalf("labels = %q/%q", m.Runs[0].Label, m.Runs[1].Label)
	}
	if m.Runs[0].Workers != 2 || m.Runs[1].Workers != 2 {
		t.Fatalf("workers = %d/%d", m.Runs[0].Workers, m.Runs[1].Workers)
	}
	if m.Runs[0].Failed || !m.Runs[1].Failed {
		t.Fatalf("failed = %v/%v", m.Runs[0].Failed, m.Runs[1].Failed)
	}
	// Events recorded in the second section carry run id 1; each EndRun also
	// records a MarkRunEnd event in its own section.
	var runEnds int
	for _, e := range tr.Events() {
		if e.Kind == KindMark && e.Mark == MarkRunEnd {
			runEnds++
			if e.Run == 1 && e.Flags&FlagFailed == 0 {
				t.Fatal("failed run's end mark lacks FlagFailed")
			}
		}
	}
	if runEnds != 2 {
		t.Fatalf("run-end marks = %d, want 2", runEnds)
	}
}

func TestMarkCodes(t *testing.T) {
	tr := New(16)
	tr.StartRun("m")
	tr.Mark(MarkRetry, Event{Op: 3, Attempt: 2, StartNS: 10})
	tr.Mark(MarkUoTRaise, Event{Op: 1, StartNS: 20})
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[0].Kind != KindMark || ev[0].Mark != MarkRetry || ev[0].Op != 3 || ev[0].Attempt != 2 {
		t.Fatalf("retry mark = %+v", ev[0])
	}
	if ev[1].Mark != MarkUoTRaise || ev[1].Op != 1 {
		t.Fatalf("raise mark = %+v", ev[1])
	}
}

// TestConcurrentRecording hammers the tracer from many goroutines while a
// reader snapshots; run under -race this is the torn-read audit for the
// tracer itself.
func TestConcurrentRecording(t *testing.T) {
	tr := New(256)
	tr.StartRun("conc")
	tr.RegisterOp(0, "op")
	tr.RegisterEdge(0, EdgeInfo{FromName: "a", ToName: "b", Pipelined: true, UoT: 2})
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Span(Event{Op: 0, Worker: int32(w), StartNS: int64(i), EndNS: int64(i) + 1, Rows: 1})
				tr.Edge(Event{Edge: 0, Buffered: 1, UoT: 2}, 1)
				if i%50 == 0 {
					tr.Mark(MarkRetry, Event{Op: 0})
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Snapshot()
			_ = tr.Events()
			_ = tr.Dropped()
			_ = tr.OpName(0, 0)
		}
	}()
	wg.Wait()
	<-done
	m := tr.Snapshot()
	o := m.Runs[0].Ops[0]
	if o.Spans != workers*perWorker || o.Rows != workers*perWorker {
		t.Fatalf("spans/rows = %d/%d, want %d", o.Spans, o.Rows, workers*perWorker)
	}
	if e := m.Runs[0].Edges[0]; e.Blocks != workers*perWorker {
		t.Fatalf("edge blocks = %d, want %d", e.Blocks, workers*perWorker)
	}
}

func TestNowAndSince(t *testing.T) {
	tr := New(4)
	before := time.Now()
	n1 := tr.Now()
	n2 := tr.Now()
	if n1 < 0 || n2 < n1 {
		t.Fatalf("Now not monotone: %d then %d", n1, n2)
	}
	if s := tr.Since(before.Add(time.Hour)); s <= 0 {
		t.Fatalf("Since(future) = %d, want positive", s)
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := New(0)
	if len(tr.buf) != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", len(tr.buf), DefaultCapacity)
	}
	tr = New(-5)
	if len(tr.buf) != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", len(tr.buf), DefaultCapacity)
	}
}
