package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fixture builds a tracer holding two sections shaped like a FIG2 sweep: a
// low-UoT run with interleaved select/probe spans and a high-UoT run where
// all probe spans start after the selects end.
func fixture() *Tracer {
	tr := New(256)

	tr.StartRun("uot=2")
	tr.SetWorkers(2)
	tr.RegisterOp(0, "select(lineitem)")
	tr.RegisterOp(1, "probe(orders)")
	tr.RegisterEdge(0, EdgeInfo{From: 0, To: 1, FromName: "select(lineitem)", ToName: "probe(orders)", Input: 0, Pipelined: true, UoT: 2})
	tr.Span(Event{Op: 0, Worker: 0, Attempt: 1, Batch: -1, EnqueueNS: 0, StartNS: 100, EndNS: 200, Rows: 10, RowsOut: 8})
	tr.Edge(Event{Edge: 0, Buffered: 0, UoT: 2, StartNS: 210, QueueDepth: 1, StallNS: 50, PoolBytes: 4096}, 2)
	tr.Span(Event{Op: 1, Worker: 1, Attempt: 1, Batch: 0, EnqueueNS: 210, StartNS: 220, EndNS: 320, Rows: 8, RowsOut: 8})
	tr.Span(Event{Op: 0, Worker: 0, Attempt: 1, Batch: -1, StartNS: 250, EndNS: 330, Rows: 10, RowsOut: 9})
	tr.Mark(MarkRetry, Event{Op: 1, Attempt: 1, StartNS: 340})
	tr.EndRun(false)

	tr.StartRun("uot=table")
	tr.SetWorkers(2)
	tr.RegisterOp(0, "select(lineitem)")
	tr.RegisterOp(1, "probe(orders)")
	tr.RegisterEdge(0, EdgeInfo{From: 0, To: 1, FromName: "select(lineitem)", ToName: "probe(orders)", Input: 0, Pipelined: true, UoT: 1 << 60})
	tr.Span(Event{Op: 0, Worker: 0, Attempt: 1, Batch: -1, StartNS: 100, EndNS: 400, Rows: 20, RowsOut: 17})
	tr.Edge(Event{Edge: 0, Buffered: 0, UoT: 1 << 60, StartNS: 410, StallNS: 300}, 17)
	tr.Span(Event{Op: 1, Worker: 1, Attempt: 1, Batch: 0, StartNS: 420, EndNS: 600, Rows: 17, RowsOut: 17})
	tr.EndRun(false)
	return tr
}

func TestWriteChromeTraceShape(t *testing.T) {
	tr := fixture()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("Chrome export is not valid JSON")
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int32          `json:"pid"`
			Tid  int32          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}

	byPh := map[string]int{}
	procNames := map[int32]string{}
	threadNames := 0
	var spanNames []string
	for _, e := range out.TraceEvents {
		byPh[e.Ph]++
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			procNames[e.Pid] = e.Args["name"].(string)
		case e.Ph == "M" && e.Name == "thread_name":
			threadNames++
		case e.Ph == "X" && (e.Name == "select(lineitem)" || e.Name == "probe(orders)"):
			spanNames = append(spanNames, e.Name)
		}
	}
	if procNames[0] != "uot=2" || procNames[1] != "uot=table" {
		t.Fatalf("process names = %v", procNames)
	}
	if threadNames != 4 { // 2 workers × 2 runs
		t.Fatalf("thread_name metadata = %d, want 4", threadNames)
	}
	// 5 work-order slices + 2 stall slices.
	if byPh["X"] != 7 {
		t.Fatalf("complete events = %d, want 7", byPh["X"])
	}
	// 2 edge samples × 3 counter tracks.
	if byPh["C"] != 6 {
		t.Fatalf("counter events = %d, want 6", byPh["C"])
	}
	// 1 retry mark + 2 run-end marks.
	if byPh["i"] != 3 {
		t.Fatalf("instant events = %d, want 3", byPh["i"])
	}
	if len(spanNames) == 0 {
		t.Fatal("no operator slices in export")
	}

	// The UoTTable threshold renders as 0 on the counter track.
	for _, e := range out.TraceEvents {
		if e.Ph == "C" && e.Pid == 1 && strings.HasPrefix(e.Name, "edge ") {
			if uot := e.Args["uot"].(float64); uot != 0 {
				t.Fatalf("UoTTable counter threshold = %v, want 0", uot)
			}
		}
	}

	// Schedule shapes: interleaved in run 0, producer-then-consumer in run 1.
	probeStart := func(pid int32) (sel, probe []float64) {
		for _, e := range out.TraceEvents {
			if e.Ph != "X" || e.Pid != pid {
				continue
			}
			switch e.Name {
			case "select(lineitem)":
				sel = append(sel, e.Ts+e.Dur)
			case "probe(orders)":
				probe = append(probe, e.Ts)
			}
		}
		return
	}
	sel0, probe0 := probeStart(0)
	if probe0[0] >= sel0[len(sel0)-1] {
		t.Fatal("low-UoT run: probe did not interleave with select")
	}
	sel1, probe1 := probeStart(1)
	if probe1[0] < sel1[len(sel1)-1] {
		t.Fatal("high-UoT run: probe started before select finished")
	}
}

func TestWriteChromeTraceNil(t *testing.T) {
	var tr *Tracer
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil tracer export did not error")
	}
}

func TestWriteChromeFileRoundTrip(t *testing.T) {
	tr := fixture()
	path := t.TempDir() + "/trace.json"
	if err := tr.WriteChromeFile(path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// File contents must match the stream export.
	got := readFile(t, path)
	if got != buf.String() {
		t.Fatal("file export differs from stream export")
	}
}

func TestDroppedInstantEmitted(t *testing.T) {
	tr := New(2)
	tr.StartRun("tiny")
	tr.RegisterOp(0, "op")
	for i := 0; i < 10; i++ {
		tr.Span(Event{Op: 0, StartNS: int64(i), EndNS: int64(i + 1)})
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "events dropped (ring full)") {
		t.Fatal("overflowed export lacks the dropped-events instant")
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	tr := fixture()
	var buf bytes.Buffer
	if err := tr.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m Metrics
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 2 || m.Runs[0].Label != "uot=2" {
		t.Fatalf("round-tripped snapshot runs = %+v", m.Runs)
	}
	sel := m.Runs[0].Ops[0]
	if sel.Name != "select(lineitem)" || sel.Spans != 2 || sel.Rows != 20 || sel.RowsOut != 17 {
		t.Fatalf("round-tripped op metrics = %+v", sel)
	}
	e := m.Runs[0].Edges[0]
	if e.Batches != 1 || e.Blocks != 2 || e.StallNS != 50 {
		t.Fatalf("round-tripped edge metrics = %+v", e)
	}
}

func TestWritePrometheus(t *testing.T) {
	tr := fixture()
	var buf bytes.Buffer
	if err := tr.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE uot_workorders_total counter",
		`uot_workorders_total{run="uot=2",op="select(lineitem)"} 2`,
		`uot_workorders_total{run="uot=2",op="probe(orders)"} 1`,
		`uot_edge_batches_total{run="uot=2",edge="select(lineitem)->probe(orders)#0"} 1`,
		`uot_edge_blocks_total{run="uot=table",edge="select(lineitem)->probe(orders)#0"} 17`,
		`uot_edge_stall_nanoseconds_total{run="uot=2",edge="select(lineitem)->probe(orders)#0"} 50`,
		"uot_trace_dropped_events 0",
		"# TYPE uot_edge_buffered_max_blocks gauge",
		`uot_op_rows_out_total{run="uot=2",op="select(lineitem)"} 17`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("Prometheus text missing %q\n%s", want, text)
		}
	}
	// Every non-comment line must be NAME{labels} VALUE or NAME VALUE.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestPromEscape(t *testing.T) {
	got := promEscape("a\\b\"c\nd")
	if got != `a\\b\"c\nd` {
		t.Fatalf("promEscape = %q", got)
	}
}
