package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Chrome trace-event export: the retained events render as a timeline in
// chrome://tracing or https://ui.perfetto.dev. Each traced section becomes a
// "process" (pid) named by its label, each worker a "thread" within it, and
// each work-order attempt a complete ("ph":"X") slice on its worker's track —
// so the Fig. 2 schedule shapes are directly visible: at low UoT the
// producer's and consumer's slices interleave, at high UoT the consumer's
// slices all start after the producer's end. Edge gauges are emitted as
// counter ("ph":"C") tracks and marks as instant ("ph":"i") events.

// chromeEvent is one entry of the trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace writes the retained events as Chrome trace-event JSON.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: cannot export a nil tracer")
	}
	events := t.Events()
	t.mu.Lock()
	runs := make([]*runMeta, len(t.runs))
	copy(runs, t.runs)
	dropped := t.dropped
	t.mu.Unlock()

	var out chromeTrace
	out.DisplayTimeUnit = "ms"
	for _, r := range runs {
		label := r.label
		if label == "" {
			label = fmt.Sprintf("run %d", r.pid)
		}
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", Pid: r.pid, Args: map[string]any{"name": label}},
			chromeEvent{Name: "process_sort_index", Ph: "M", Pid: r.pid, Args: map[string]any{"sort_index": r.pid}},
		)
		for w := 0; w < r.workers; w++ {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: r.pid, Tid: int32(w),
				Args: map[string]any{"name": fmt.Sprintf("worker %d", w)},
			})
		}
	}
	edgeName := func(r *runMeta, id int32) string {
		if r != nil && int(id) < len(r.edges) {
			e := r.edges[id]
			return fmt.Sprintf("%s->%s#%d", e.FromName, e.ToName, e.Input)
		}
		return fmt.Sprintf("edge %d", id)
	}
	runOf := func(id int32) *runMeta {
		if int(id) < len(runs) {
			return runs[id]
		}
		return nil
	}
	for _, e := range events {
		r := runOf(e.Run)
		switch e.Kind {
		case KindSpan:
			name := ""
			if r != nil && int(e.Op) < len(r.ops) {
				name = r.ops[e.Op]
			}
			if name == "" {
				name = fmt.Sprintf("op %d", e.Op)
			}
			args := map[string]any{
				"op": e.Op, "attempt": e.Attempt, "rows_in": e.Rows, "rows_out": e.RowsOut,
			}
			if e.Query >= 0 {
				args["query"] = e.Query
			}
			if e.Batch >= 0 {
				args["uot_batch"] = e.Batch
			}
			if e.EnqueueNS > 0 {
				args["queue_us"] = us(e.StartNS - e.EnqueueNS)
			}
			if e.Flags&FlagFailed != 0 {
				args["failed"] = true
			}
			if e.Flags&FlagRetried != 0 {
				args["retried"] = true
			}
			if e.Demotions > 0 {
				args["demotions"] = e.Demotions
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Cat: "workorder", Ph: "X",
				Ts: us(e.StartNS), Dur: us(e.EndNS - e.StartNS),
				Pid: e.Run, Tid: e.Worker, Args: args,
			})
		case KindEdge:
			// One counter track per edge (buffered blocks vs. its UoT
			// threshold), plus shared queue-depth and pool-occupancy tracks.
			uot := e.UoT
			if uot > 1<<40 { // UoTTable renders as 0 threshold line
				uot = 0
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "edge " + edgeName(r, e.Edge), Cat: "edge", Ph: "C",
				Ts: us(e.StartNS), Pid: e.Run, Tid: 0,
				Args: map[string]any{"buffered": e.Buffered, "uot": uot},
			}, chromeEvent{
				Name: "scheduler queue", Cat: "edge", Ph: "C",
				Ts: us(e.StartNS), Pid: e.Run, Tid: 0,
				Args: map[string]any{"depth": e.QueueDepth},
			}, chromeEvent{
				Name: "pool bytes", Cat: "edge", Ph: "C",
				Ts: us(e.StartNS), Pid: e.Run, Tid: 0,
				Args: map[string]any{"live": e.PoolBytes},
			})
			if e.StallNS > 0 {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "stall " + edgeName(r, e.Edge), Cat: "stall", Ph: "X",
					Ts: us(e.StartNS - e.StallNS), Dur: us(e.StallNS),
					Pid: e.Run, Tid: -1,
					Args: map[string]any{"delivered_after_ns": e.StallNS},
				})
			}
		case KindMark:
			name := "mark"
			switch e.Mark {
			case MarkRetry:
				name = "retry scheduled"
			case MarkUoTRaise:
				name = "uot raised"
			case MarkUoTLower:
				name = "uot lowered"
			case MarkUoTSnap:
				name = "uot snapped to table"
			case MarkRunEnd:
				name = "run end"
			case MarkSpill:
				name = "spill evict"
			case MarkSpillFaultIn:
				name = "spill fault-in"
			case MarkReuseHit:
				name = "reuse hit-splice"
			case MarkReuseEvict:
				name = "reuse evict"
			}
			args := map[string]any{"op": e.Op}
			if e.Mark == MarkUoTRaise || e.Mark == MarkUoTLower || e.Mark == MarkUoTSnap {
				args["edge"] = e.Edge
				if e.UoT > 1<<40 {
					args["uot"] = "table"
				} else if e.UoT > 0 {
					args["uot"] = e.UoT
				}
			}
			if e.Attempt > 0 {
				args["attempt"] = e.Attempt
			}
			if e.Flags&FlagFailed != 0 {
				args["failed"] = true
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Cat: "sched", Ph: "i", S: "p",
				Ts: us(e.StartNS), Pid: e.Run, Tid: 0, Args: args,
			})
		}
	}
	if dropped > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "events dropped (ring full)", Cat: "sched", Ph: "i", S: "g",
			Ts: 0, Pid: 0, Tid: 0, Args: map[string]any{"dropped": dropped},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteChromeFile writes the Chrome trace to path.
func (t *Tracer) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
