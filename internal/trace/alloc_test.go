package trace

import "testing"

// The tracing layer must never perturb what it measures: both the disabled
// (nil tracer) and the enabled recording paths are required to be
// allocation-free. These assertions back the "zero allocation when disabled"
// acceptance criterion with testing.AllocsPerRun rather than a benchmark
// that could silently regress.

func assertZeroAllocs(t *testing.T, name string, fn func()) {
	t.Helper()
	if n := testing.AllocsPerRun(200, fn); n != 0 {
		t.Errorf("%s: %v allocs/op, want 0", name, n)
	}
}

func TestDisabledPathAllocatesNothing(t *testing.T) {
	var tr *Tracer
	ev := Event{Op: 1, Worker: 2, StartNS: 3, EndNS: 4, Rows: 5}
	assertZeroAllocs(t, "nil.Enabled", func() { _ = tr.Enabled() })
	assertZeroAllocs(t, "nil.Now", func() { _ = tr.Now() })
	assertZeroAllocs(t, "nil.Span", func() { tr.Span(ev) })
	assertZeroAllocs(t, "nil.Edge", func() { tr.Edge(ev, 1) })
	assertZeroAllocs(t, "nil.Mark", func() { tr.Mark(MarkRetry, ev) })
	assertZeroAllocs(t, "nil.StartRun", func() { tr.StartRun("x") })
	assertZeroAllocs(t, "nil.EndRun", func() { tr.EndRun(false) })
	assertZeroAllocs(t, "nil.Snapshot", func() { _ = tr.Snapshot() })
}

func TestEnabledRecordingAllocatesNothing(t *testing.T) {
	tr := New(1 << 10)
	tr.StartRun("alloc")
	tr.RegisterOp(0, "op")
	tr.RegisterEdge(0, EdgeInfo{FromName: "a", ToName: "b", Pipelined: true, UoT: 2})
	ev := Event{Op: 0, Worker: 1, EnqueueNS: 1, StartNS: 2, EndNS: 3, Rows: 4, RowsOut: 4, Batch: -1}
	ee := Event{Edge: 0, Buffered: 1, UoT: 2, StartNS: 5, QueueDepth: 1, PoolBytes: 4096}
	assertZeroAllocs(t, "Span", func() { tr.Span(ev) })
	assertZeroAllocs(t, "Edge", func() { tr.Edge(ee, 2) })
	assertZeroAllocs(t, "Mark", func() { tr.Mark(MarkRetry, ev) })
	assertZeroAllocs(t, "Now", func() { _ = tr.Now() })
}

// BenchmarkDisabledSpan measures the full disabled-path cost a scheduler
// call site pays per work order: the Enabled check plus the nil-method call.
func BenchmarkDisabledSpan(b *testing.B) {
	var tr *Tracer
	ev := Event{Op: 1, Worker: 2, StartNS: 3, EndNS: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			ev.EnqueueNS = tr.Now()
		}
		tr.Span(ev)
	}
}

// BenchmarkEnabledSpan measures the enabled recording path (lock + aggregate
// update + ring copy).
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New(1 << 12)
	tr.StartRun("bench")
	tr.RegisterOp(0, "op")
	ev := Event{Op: 0, Worker: 1, StartNS: 2, EndNS: 3, Rows: 4, Batch: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(ev)
	}
}
