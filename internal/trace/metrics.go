package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Metrics is a machine-readable snapshot of the tracer's aggregates. Unlike
// the event ring, the aggregates are exact: they are maintained outside the
// ring and survive event overwrites.
type Metrics struct {
	// CapturedEvents is how many events the ring currently retains;
	// DroppedEvents how many were overwritten after it filled.
	CapturedEvents int          `json:"captured_events"`
	DroppedEvents  int64        `json:"dropped_events"`
	Runs           []RunMetrics `json:"runs"`
}

// RunMetrics aggregates one traced section.
type RunMetrics struct {
	Run int `json:"run"`
	// Query is the section's query-id span label (-1 when it has none; set
	// by Tracer.OpenRun for concurrent serving sections).
	Query   int    `json:"query,omitempty"`
	Label   string `json:"label,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// WallNS is the section's duration (0 if EndRun was not called).
	WallNS int64         `json:"wall_ns"`
	Failed bool          `json:"failed,omitempty"`
	Ops    []OpMetrics   `json:"ops"`
	Edges  []EdgeMetrics `json:"edges"`

	// Spill-tier aggregates (zero without a spill tier): scheduler-marked
	// evictions/fault-ins and the read-through stall deliveries paid.
	SpillBlocksOut int64 `json:"spill_blocks_out,omitempty"`
	SpillBytesOut  int64 `json:"spill_bytes_out,omitempty"`
	SpillBlocksIn  int64 `json:"spill_blocks_in,omitempty"`
	SpillBytesIn   int64 `json:"spill_bytes_in,omitempty"`
	SpillStallNS   int64 `json:"spill_stall_ns,omitempty"`

	// Reuse-cache aggregates (zero without a reuse cache): hit-splices that
	// replaced a subtree with a cached-result scan, the operators and bytes
	// they pruned, and cache evictions observed during the section.
	ReuseHits         int64 `json:"reuse_hits,omitempty"`
	ReuseSplicedOps   int64 `json:"reuse_spliced_ops,omitempty"`
	ReuseHitBytes     int64 `json:"reuse_hit_bytes,omitempty"`
	ReuseEvictions    int64 `json:"reuse_evictions,omitempty"`
	ReuseEvictedBytes int64 `json:"reuse_evicted_bytes,omitempty"`
}

// OpMetrics aggregates one operator's work-order spans.
type OpMetrics struct {
	Op        int    `json:"op"`
	Name      string `json:"name"`
	Spans     int64  `json:"spans"`     // completed attempts, failures included
	Failed    int64  `json:"failed"`    // rolled-back attempts
	Retries   int64  `json:"retries"`   // failed attempts that were re-dispatched
	Rows      int64  `json:"rows_in"`   // input rows of successful attempts
	RowsOut   int64  `json:"rows_out"`  // output rows of successful attempts
	BusyNS    int64  `json:"busy_ns"`   // summed attempt wall time
	QueueNS   int64  `json:"queue_ns"`  // summed enqueue→start latency
	Demotions int64  `json:"demotions"` // fast-path → reference-path demotions

	// Sort-kernel counters (zero for non-sort operators).
	SortRuns         int64 `json:"sort_runs,omitempty"`          // sorted runs generated
	SortMergeFanout  int64 `json:"sort_merge_fanout,omitempty"`  // parallel merge work orders
	SortFastRows     int64 `json:"sort_fast_rows,omitempty"`     // rows via normalized keys
	SortFallbackRows int64 `json:"sort_fallback_rows,omitempty"` // rows via the reference path
	TopKPruned       int64 `json:"topk_pruned,omitempty"`        // rows pruned by the top-k heap

	// Exchange-kernel counters (zero for non-exchange operators).
	ExchangeRows      int64 `json:"exchange_rows,omitempty"`      // rows scattered to partitions
	RepartitionFanout int64 `json:"repartition_fanout,omitempty"` // partition streams scattered into
	PartitionSkew     int64 `json:"partition_skew,omitempty"`     // skew-guard trips
}

// EdgeMetrics aggregates one pipelined edge's gauge samples.
type EdgeMetrics struct {
	Edge        int    `json:"edge"`
	From        string `json:"from"`
	To          string `json:"to"`
	Input       int    `json:"input"`
	Pipelined   bool   `json:"pipelined"`
	UoT         int64  `json:"uot"`          // current threshold (raises observable here)
	Samples     int64  `json:"samples"`      // gauge samples taken
	Batches     int64  `json:"batches"`      // UoT deliveries to the consumer
	Blocks      int64  `json:"blocks"`       // blocks delivered
	MaxBuffered int32  `json:"max_buffered"` // high-water buffered blocks
	StallNS     int64  `json:"stall_ns"`     // summed buffered-wait before delivery
}

// Snapshot returns the current metrics. Safe to call mid-run and on nil
// (empty snapshot).
func (t *Tracer) Snapshot() Metrics {
	if t == nil {
		return Metrics{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	m := Metrics{CapturedEvents: t.n, DroppedEvents: t.dropped}
	for _, r := range t.runs {
		rm := RunMetrics{
			Run: int(r.pid), Query: int(r.query), Label: r.label, Workers: r.workers, Failed: r.failed,
			SpillBlocksOut: r.spillBlocksOut, SpillBytesOut: r.spillBytesOut,
			SpillBlocksIn: r.spillBlocksIn, SpillBytesIn: r.spillBytesIn,
			SpillStallNS: r.spillStallNS,
			ReuseHits:    r.reuseHits, ReuseSplicedOps: r.reuseSplicedOps,
			ReuseHitBytes: r.reuseHitBytes, ReuseEvictions: r.reuseEvictions,
			ReuseEvictedBytes: r.reuseEvictedBytes,
		}
		if r.endNS > r.beginNS {
			rm.WallNS = r.endNS - r.beginNS
		}
		for id, name := range r.ops {
			a := r.opAggs[id]
			rm.Ops = append(rm.Ops, OpMetrics{
				Op: id, Name: name, Spans: a.spans, Failed: a.failed, Retries: a.retries,
				Rows: a.rows, RowsOut: a.rowsOut, BusyNS: a.busyNS, QueueNS: a.queueNS,
				Demotions: a.demotions,
				SortRuns:  a.sortRuns, SortMergeFanout: a.sortMergeFanout,
				SortFastRows: a.sortFastRows, SortFallbackRows: a.sortFallbackRows,
				TopKPruned:   a.topkPruned,
				ExchangeRows: a.exchangeRows, RepartitionFanout: a.repartitionFanout,
				PartitionSkew: a.partitionSkew,
			})
		}
		for id, info := range r.edges {
			a := r.edgeAgg[id]
			rm.Edges = append(rm.Edges, EdgeMetrics{
				Edge: id, From: info.FromName, To: info.ToName, Input: info.Input,
				Pipelined: info.Pipelined, UoT: a.lastUoT, Samples: a.samples,
				Batches: a.batches, Blocks: a.blocks, MaxBuffered: a.maxBuffered,
				StallNS: a.stallNS,
			})
		}
		m.Runs = append(m.Runs, rm)
	}
	return m
}

// WriteJSON writes the snapshot as indented JSON.
func (m Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// promEscape escapes a Prometheus label value.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (one sample per run/operator or run/edge label set).
func (m Metrics) WritePrometheus(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString("# HELP uot_trace_dropped_events Events overwritten after the trace ring filled.\n")
	sb.WriteString("# TYPE uot_trace_dropped_events counter\n")
	fmt.Fprintf(&sb, "uot_trace_dropped_events %d\n", m.DroppedEvents)

	emit := func(name, help, typ string, rows func(run RunMetrics, add func(labels string, v int64))) {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, run := range m.Runs {
			lbl := promEscape(run.Label)
			rows(run, func(labels string, v int64) {
				fmt.Fprintf(&sb, "%s{run=%q,%s} %d\n", name, lbl, labels, v)
			})
		}
	}
	emit("uot_workorders_total", "Completed work-order attempts per operator.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.Spans)
			}
		})
	emit("uot_workorder_failures_total", "Rolled-back work-order attempts per operator.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.Failed)
			}
		})
	emit("uot_workorder_retries_total", "Re-dispatched transient failures per operator.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.Retries)
			}
		})
	emit("uot_op_busy_nanoseconds_total", "Summed work-order wall time per operator.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.BusyNS)
			}
		})
	emit("uot_op_queue_nanoseconds_total", "Summed enqueue-to-start latency per operator.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.QueueNS)
			}
		})
	emit("uot_op_rows_out_total", "Output rows of successful attempts per operator.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.RowsOut)
			}
		})
	emit("uot_sort_runs_total", "Sorted runs generated per operator (sort fast path).", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				if o.SortRuns > 0 {
					add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.SortRuns)
				}
			}
		})
	emit("uot_topk_pruned_total", "Rows pruned by the bounded top-k heap per operator.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				if o.TopKPruned > 0 {
					add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.TopKPruned)
				}
			}
		})
	emit("uot_exchange_rows_total", "Rows scattered into partition-local streams per exchange operator.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				if o.ExchangeRows > 0 {
					add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.ExchangeRows)
				}
			}
		})
	emit("uot_partition_skew_total", "Exchange skew-guard trips (more than half of all rows in one partition).", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, o := range run.Ops {
				if o.PartitionSkew > 0 {
					add(fmt.Sprintf("op=%q", promEscape(o.Name)), o.PartitionSkew)
				}
			}
		})
	edgeLabel := func(e EdgeMetrics) string {
		return fmt.Sprintf("edge=%q", promEscape(fmt.Sprintf("%s->%s#%d", e.From, e.To, e.Input)))
	}
	emit("uot_edge_batches_total", "UoT-sized deliveries per pipelined edge.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, e := range run.Edges {
				if e.Pipelined {
					add(edgeLabel(e), e.Batches)
				}
			}
		})
	emit("uot_edge_blocks_total", "Blocks delivered per pipelined edge.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, e := range run.Edges {
				if e.Pipelined {
					add(edgeLabel(e), e.Blocks)
				}
			}
		})
	emit("uot_edge_buffered_max_blocks", "High-water buffered blocks per pipelined edge.", "gauge",
		func(run RunMetrics, add func(string, int64)) {
			for _, e := range run.Edges {
				if e.Pipelined {
					add(edgeLabel(e), int64(e.MaxBuffered))
				}
			}
		})
	emit("uot_edge_stall_nanoseconds_total", "Summed buffered-wait before delivery per pipelined edge.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			for _, e := range run.Edges {
				if e.Pipelined {
					add(edgeLabel(e), e.StallNS)
				}
			}
		})
	emit("uot_edge_uot_blocks", "Current UoT threshold per pipelined edge (raises observable).", "gauge",
		func(run RunMetrics, add func(string, int64)) {
			for _, e := range run.Edges {
				if e.Pipelined {
					add(edgeLabel(e), e.UoT)
				}
			}
		})
	emit("uot_spill_blocks_total", "Temp blocks moved between RAM and the spill tier, by direction.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			add(`dir="out"`, run.SpillBlocksOut)
			add(`dir="in"`, run.SpillBlocksIn)
		})
	emit("uot_spill_bytes_total", "Extent-file bytes written (evictions) and read (fault-ins).", "counter",
		func(run RunMetrics, add func(string, int64)) {
			add(`dir="out"`, run.SpillBytesOut)
			add(`dir="in"`, run.SpillBytesIn)
		})
	emit("uot_spill_stall_nanoseconds_total", "Delivery wall time spent blocked on spill fault-in.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			add(`kind="fault_in"`, run.SpillStallNS)
		})
	emit("uot_reuse_hits_total", "Subtrees replaced by cached-result scans (hit-splices).", "counter",
		func(run RunMetrics, add func(string, int64)) {
			add(`kind="splice"`, run.ReuseHits)
		})
	emit("uot_reuse_spliced_ops_total", "Operators pruned from plans by reuse hit-splices.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			add(`kind="splice"`, run.ReuseSplicedOps)
		})
	emit("uot_reuse_bytes_total", "Cached-result bytes served by hit-splices and bytes dropped by evictions.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			add(`dir="hit"`, run.ReuseHitBytes)
			add(`dir="evicted"`, run.ReuseEvictedBytes)
		})
	emit("uot_reuse_evictions_total", "Reuse-cache entries evicted or cooled out of RAM.", "counter",
		func(run RunMetrics, add func(string, int64)) {
			add(`kind="evict"`, run.ReuseEvictions)
		})
	_, err := io.WriteString(w, sb.String())
	return err
}
