// Package trace is the execution observability layer: a fixed-capacity
// ring-buffer sink for scheduler events that makes the paper's central
// artifact — the realized work-order schedule — directly observable instead
// of reconstructed from logs.
//
// Three event kinds are recorded:
//
//   - spans: one per completed work-order attempt, carrying the operator,
//     worker, attempt number, UoT batch id, and the enqueue/start/finish
//     timestamps, plus the retry/demotion annotations of the fault path;
//   - edge samples: per-pipelined-edge gauges taken on scheduler
//     transitions — buffered blocks vs. the UoT threshold, scheduler queue
//     depth, accumulated stall time, and memory-pool occupancy;
//   - marks: instant annotations (retry scheduled, UoT raised under memory
//     pressure, run finished).
//
// The sink must never perturb what it measures: every recording method is
// safe on a nil *Tracer and allocates nothing — events are fixed-width
// structs copied by value into a preallocated ring (alloc_test.go asserts
// 0 allocs/op on both the disabled and the enabled path). When the ring
// fills, the oldest events are overwritten and counted as dropped; the
// aggregate metrics (see Snapshot) are maintained outside the ring and stay
// exact regardless.
//
// Exports: WriteChromeTrace renders the timeline as a Chrome trace-event
// JSON file (load in chrome://tracing or Perfetto to see the Fig. 2
// interleaving-vs-blocking schedule shapes); Snapshot returns a
// machine-readable metrics snapshot serializable as JSON or Prometheus-style
// text.
package trace

import (
	"sync"
	"time"
)

// Kind classifies a recorded event.
type Kind uint8

// Event kinds.
const (
	// KindSpan is one completed work-order attempt.
	KindSpan Kind = iota + 1
	// KindEdge is a per-edge gauge sample taken on a scheduler transition.
	KindEdge
	// KindMark is an instant annotation.
	KindMark
)

// MarkCode identifies an instant annotation.
type MarkCode uint8

// Mark codes.
const (
	// MarkRetry: a transiently-failed work order was re-queued with backoff.
	MarkRetry MarkCode = iota + 1
	// MarkUoTRaise: an edge's UoT was raised — doubled under sustained
	// memory pressure, or stepped up by the adaptive controller (Edge names
	// the edge, UoT carries the new value; legacy pressure marks before the
	// controller carried only Op).
	MarkUoTRaise
	// MarkRunEnd: the run finished (FlagFailed set if it errored).
	MarkRunEnd
	// MarkPartitionSkew: an exchange's skew guard tripped — one partition
	// received more than half of all scattered rows (Rows carries the
	// dominant partition's row count, RowsOut the total).
	MarkPartitionSkew
	// MarkUoTLower: the adaptive controller refined an edge's UoT (Edge
	// names the edge, UoT carries the new value).
	MarkUoTLower
	// MarkUoTSnap: an edge's UoT snapped to UoTTable past the degradation
	// ceiling — the terminal blocking regime, distinct from MarkUoTRaise so
	// plots can attribute regime switches.
	MarkUoTSnap
	// MarkSpill: the spill tier evicted cold temp blocks to disk after a
	// scheduler-side pressure event (Rows carries the blocks written in the
	// round, RowsOut the bytes). Worker-side evictions triggered from
	// CheckOut are counted in the tier's own totals but not marked — the
	// scheduler is the only goroutine that may touch the tracer section.
	MarkSpill
	// MarkSpillFaultIn: a delivery blocked while spilled blocks were read
	// back in (Rows carries the blocks faulted in, RowsOut the bytes,
	// StallNS the read-through stall the consumer paid).
	MarkSpillFaultIn
	// MarkReuseHit: the reuse cache matched a subtree fingerprint and the
	// engine spliced a cached-result scan in its place (Rows carries the
	// operators pruned, RowsOut the entry's bytes).
	MarkReuseHit
	// MarkReuseEvict: the reuse cache evicted an entry to make room
	// (RowsOut carries the evicted entry's bytes).
	MarkReuseEvict
)

// Span flag bits.
const (
	// FlagFailed marks a failed (rolled-back) attempt or an errored run.
	FlagFailed uint8 = 1 << iota
	// FlagRetried marks a failed attempt the scheduler re-dispatched.
	FlagRetried
)

// Event is one fixed-width trace record. Which fields are meaningful depends
// on Kind; unused fields are zero. All timestamps are nanoseconds since the
// tracer's base time (see Now).
type Event struct {
	Kind  Kind
	Mark  MarkCode
	Flags uint8

	Run     int32 // run (section) id, assigned by the tracer on record
	Query   int32 // query id of the section (-1 when unlabeled), assigned on record
	Op      int32 // operator id within the run
	Edge    int32 // edge id within the run (KindEdge; -1 on spans)
	Worker  int32 // executing worker (KindSpan)
	Attempt int32 // 1-based attempt number (KindSpan)

	// Batch is the per-edge UoT delivery id whose blocks this work order
	// consumes (-1 for work orders not born from an edge delivery).
	Batch int64

	EnqueueNS int64 // when the work order entered the scheduler queue
	StartNS   int64 // when the attempt started on a worker (sample time for KindEdge/KindMark)
	EndNS     int64 // when the attempt finished

	Rows      int64 // input rows consumed by the attempt
	RowsOut   int64 // output rows produced by the attempt
	Demotions int64 // fast-path → reference-path demotions it triggered

	// Sort-kernel counters (KindSpan; see core.Output).
	SortRuns         int64 // sorted runs produced by run generation
	SortMergeFanout  int64 // range-partitioned merge work orders
	SortFastRows     int64 // rows sorted through the normalized-key path
	SortFallbackRows int64 // rows sorted through the reference Datum path
	TopKPruned       int64 // rows pruned by the bounded top-k heap

	// Exchange-kernel counters (KindSpan; see core.Output).
	ExchangeRows      int64 // rows scattered into partition-local streams
	RepartitionFanout int64 // distinct partition streams scattered into
	PartitionSkew     int64 // skew-guard trips

	// Edge-sample gauges (KindEdge).
	Buffered   int32 // blocks buffered on the edge after the transition
	UoT        int64 // the edge's current UoT threshold in blocks
	QueueDepth int32 // scheduler queue depth at the sample
	StallNS    int64 // time the drained blocks waited buffered (0 while filling)
	PoolBytes  int64 // live temporary-block bytes at the sample
}

// EdgeInfo describes a registered plan edge.
type EdgeInfo struct {
	From      int    // producer operator id
	To        int    // consumer operator id
	FromName  string // producer display name
	ToName    string // consumer display name
	Input     int    // pipelined input index at the consumer
	Pipelined bool   // false for blocking (ordering-only) edges
	UoT       int    // the edge's initial UoT in blocks (0 for blocking edges)
}

// opAgg accumulates per-operator metrics outside the ring.
type opAgg struct {
	spans, failed, retries int64
	rows, rowsOut          int64
	busyNS, queueNS        int64
	demotions              int64

	sortRuns, sortMergeFanout      int64
	sortFastRows, sortFallbackRows int64
	topkPruned                     int64

	exchangeRows, repartitionFanout int64
	partitionSkew                   int64
}

// edgeAgg accumulates per-edge metrics outside the ring.
type edgeAgg struct {
	samples, batches, blocks int64
	maxBuffered              int32
	stallNS                  int64
	lastUoT                  int64
}

// runMeta is one traced execution section: its label, registered operators
// and edges, and their aggregates.
type runMeta struct {
	pid     int32
	query   int32 // query id span label (-1 when the section has none)
	label   string
	ops     []string
	opAggs  []opAgg
	edges   []EdgeInfo
	edgeAgg []edgeAgg
	beginNS int64
	endNS   int64
	failed  bool
	workers int

	// Spill aggregates, maintained outside the ring like the op/edge
	// aggregates so snapshots stay exact when the ring wraps.
	spillBlocksOut, spillBytesOut int64
	spillBlocksIn, spillBytesIn   int64
	spillStallNS                  int64

	// Reuse aggregates (see internal/reuse).
	reuseHits, reuseSplicedOps, reuseHitBytes int64
	reuseEvictions, reuseEvictedBytes         int64
}

// Tracer is the event sink. The zero value is not usable; construct with
// New. A nil *Tracer is the disabled tracer: every method is a nil-safe
// no-op, so call sites need no separate enabled flag.
type Tracer struct {
	mu      sync.Mutex
	base    time.Time
	buf     []Event
	next    int // next ring slot to write
	n       int // events currently stored
	dropped int64
	runs    []*runMeta
	cur     *runMeta
}

// DefaultCapacity is the ring size used when New is given capacity <= 0.
const DefaultCapacity = 1 << 16

// New returns a tracer whose ring holds capacity events (DefaultCapacity if
// capacity <= 0). Timestamps are nanoseconds since this call.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Tracer{base: time.Now(), buf: make([]Event, capacity)}
}

// Enabled reports whether events are being collected; false on nil.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns nanoseconds since the tracer's base time; 0 on nil.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.base))
}

// Since converts an absolute timestamp to tracer-relative nanoseconds.
func (t *Tracer) Since(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return int64(at.Sub(t.base))
}

// StartRun begins a new trace section (one engine execution) and makes it
// the tracer's *current* section: events recorded through the sectionless
// methods (Span, Edge, Mark, ...) carry its run id; exports group by
// section, so one tracer can hold several executions side by side (the
// FIG2 sweep records one section per UoT value).
func (t *Tracer) StartRun(label string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.startRunLocked(label)
	t.mu.Unlock()
}

func (t *Tracer) startRunLocked(label string) *runMeta {
	r := &runMeta{pid: int32(len(t.runs)), query: -1, label: label, beginNS: int64(time.Since(t.base))}
	t.runs = append(t.runs, r)
	t.cur = r
	return r
}

// OpenRun begins a new trace section without making it current, returning a
// section handle for the *In recording variants. Concurrent executions (the
// serving layer) each open their own section and record into it explicitly,
// so interleaved queries never corrupt each other's aggregates — the
// single-current-section methods remain for sequential use. query is the
// section's query-id span label (use -1 for none); every event recorded into
// the section carries it in Event.Query. Handle 0 is reserved for "the
// current section", so the sectionless methods are exactly the *In methods
// with handle 0.
func (t *Tracer) OpenRun(label string, query int) int32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.cur
	r := t.startRunLocked(label)
	r.query = int32(query)
	t.cur = cur // OpenRun does not steal the current section
	return r.pid + 1
}

// section resolves a handle under t.mu: 0 is the current section (possibly
// nil), a positive handle an OpenRun section.
func (t *Tracer) section(h int32) *runMeta {
	if h > 0 && int(h) <= len(t.runs) {
		return t.runs[h-1]
	}
	return t.cur
}

// sectionOrOpen is section, auto-opening an unlabeled current section for
// registration calls that may arrive before any StartRun.
func (t *Tracer) sectionOrOpen(h int32) *runMeta {
	if r := t.section(h); r != nil {
		return r
	}
	return t.startRunLocked("")
}

// EndRun stamps the current section finished; failed marks an errored run.
func (t *Tracer) EndRun(failed bool) { t.EndRunIn(0, failed) }

// EndRunIn stamps section h finished.
func (t *Tracer) EndRunIn(h int32, failed bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if r := t.section(h); r != nil {
		r.endNS = int64(time.Since(t.base))
		r.failed = failed
	}
	t.mu.Unlock()
	e := Event{StartNS: t.Now()}
	if failed {
		e.Flags = FlagFailed
	}
	t.MarkIn(h, MarkRunEnd, e)
}

// SetWorkers records the current section's worker count (thread naming in
// exports).
func (t *Tracer) SetWorkers(n int) { t.SetWorkersIn(0, n) }

// SetWorkersIn records section h's worker count.
func (t *Tracer) SetWorkersIn(h int32, n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sectionOrOpen(h).workers = n
	t.mu.Unlock()
}

// RegisterOp names operator id within the current section (auto-opened if
// StartRun was not called).
func (t *Tracer) RegisterOp(id int, name string) { t.RegisterOpIn(0, id, name) }

// RegisterOpIn names operator id within section h.
func (t *Tracer) RegisterOpIn(h int32, id int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	r := t.sectionOrOpen(h)
	for len(r.ops) <= id {
		r.ops = append(r.ops, "")
		r.opAggs = append(r.opAggs, opAgg{})
	}
	r.ops[id] = name
	t.mu.Unlock()
}

// RegisterEdge describes edge id within the current section.
func (t *Tracer) RegisterEdge(id int, info EdgeInfo) { t.RegisterEdgeIn(0, id, info) }

// RegisterEdgeIn describes edge id within section h.
func (t *Tracer) RegisterEdgeIn(h int32, id int, info EdgeInfo) {
	if t == nil {
		return
	}
	t.mu.Lock()
	r := t.sectionOrOpen(h)
	for len(r.edges) <= id {
		r.edges = append(r.edges, EdgeInfo{})
		r.edgeAgg = append(r.edgeAgg, edgeAgg{})
	}
	r.edges[id] = info
	r.edgeAgg[id].lastUoT = int64(info.UoT)
	t.mu.Unlock()
}

// Span records one completed work-order attempt into the current section.
// Kind, Run, Query, and Edge are set by the tracer.
func (t *Tracer) Span(e Event) { t.SpanIn(0, e) }

// SpanIn records one completed work-order attempt into section h.
func (t *Tracer) SpanIn(h int32, e Event) {
	if t == nil {
		return
	}
	e.Kind = KindSpan
	e.Edge = -1
	t.mu.Lock()
	r := t.section(h)
	if r != nil && int(e.Op) < len(r.opAggs) {
		a := &r.opAggs[e.Op]
		a.spans++
		a.busyNS += e.EndNS - e.StartNS
		if e.EnqueueNS > 0 && e.StartNS > e.EnqueueNS {
			a.queueNS += e.StartNS - e.EnqueueNS
		}
		a.demotions += e.Demotions
		if e.Flags&FlagFailed != 0 {
			a.failed++
			if e.Flags&FlagRetried != 0 {
				a.retries++
			}
		} else {
			a.rows += e.Rows
			a.rowsOut += e.RowsOut
			a.sortRuns += e.SortRuns
			a.sortMergeFanout += e.SortMergeFanout
			a.sortFastRows += e.SortFastRows
			a.sortFallbackRows += e.SortFallbackRows
			a.topkPruned += e.TopKPruned
			a.exchangeRows += e.ExchangeRows
			a.repartitionFanout += e.RepartitionFanout
			a.partitionSkew += e.PartitionSkew
		}
	}
	t.recordLocked(r, e)
	t.mu.Unlock()
}

// Edge records a per-edge gauge sample into the current section; delivered
// is how many blocks this transition handed to the consumer (0 for a pure
// buffering sample, in which case no batch is counted).
func (t *Tracer) Edge(e Event, delivered int) { t.EdgeIn(0, e, delivered) }

// EdgeIn records a per-edge gauge sample into section h.
func (t *Tracer) EdgeIn(h int32, e Event, delivered int) {
	if t == nil {
		return
	}
	e.Kind = KindEdge
	t.mu.Lock()
	r := t.section(h)
	if r != nil && int(e.Edge) < len(r.edgeAgg) {
		a := &r.edgeAgg[e.Edge]
		a.samples++
		if delivered > 0 {
			a.batches++
			a.blocks += int64(delivered)
		}
		if e.Buffered > a.maxBuffered {
			a.maxBuffered = e.Buffered
		}
		a.stallNS += e.StallNS
		a.lastUoT = e.UoT
	}
	t.recordLocked(r, e)
	t.mu.Unlock()
}

// Mark records an instant annotation into the current section.
func (t *Tracer) Mark(code MarkCode, e Event) { t.MarkIn(0, code, e) }

// MarkIn records an instant annotation into section h.
func (t *Tracer) MarkIn(h int32, code MarkCode, e Event) {
	if t == nil {
		return
	}
	e.Kind = KindMark
	e.Mark = code
	t.mu.Lock()
	r := t.section(h)
	if r != nil {
		switch code {
		case MarkSpill:
			r.spillBlocksOut += e.Rows
			r.spillBytesOut += e.RowsOut
		case MarkSpillFaultIn:
			r.spillBlocksIn += e.Rows
			r.spillBytesIn += e.RowsOut
			r.spillStallNS += e.StallNS
		case MarkReuseHit:
			r.reuseHits++
			r.reuseSplicedOps += e.Rows
			r.reuseHitBytes += e.RowsOut
		case MarkReuseEvict:
			r.reuseEvictions++
			r.reuseEvictedBytes += e.RowsOut
		}
	}
	t.recordLocked(r, e)
	t.mu.Unlock()
}

func (t *Tracer) recordLocked(r *runMeta, e Event) {
	if r != nil {
		e.Run = r.pid
		e.Query = r.query
	}
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.dropped++
	}
}

// Events returns the retained events oldest-first (a copy).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(start+i)%len(t.buf)]
	}
	return out
}

// Dropped returns how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// OpName resolves an operator id within a run id ("" if unknown).
func (t *Tracer) OpName(run, op int32) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(run) < len(t.runs) && int(op) < len(t.runs[run].ops) {
		return t.runs[run].ops[op]
	}
	return ""
}
