// Package memmodel implements the paper's memory-footprint analysis
// (Section VI): the Table II comparison between the two UoT extremes for a
// selection→probe-cascade plan fragment, the (M/w)·(c/f) hash-table size
// model, and the selectivity/projectivity accounting behind Tables III
// and IV.
package memmodel

// LowUoTOverhead is the memory overhead of the pipelining strategy for a
// cascade of n probes: every hash table except the current one must be live
// at once, so the overhead relative to "one join at a time" is Σ_{i=2..n}
// |H_i| (Table II).
func LowUoTOverhead(hashTableBytes []int64) int64 {
	var sum int64
	for i, h := range hashTableBytes {
		if i == 0 {
			continue
		}
		sum += h
	}
	return sum
}

// HighUoTOverhead is the memory overhead of the blocking strategy: the
// materialized selection output |σ(R)| (Table II).
func HighUoTOverhead(selectionOutputBytes int64) int64 { return selectionOutputBytes }

// HashTableSize is the Section VI-B model: a table over M input bytes of
// w-byte tuples with c-byte buckets at load factor f occupies (M/w)·(c/f)
// bytes.
func HashTableSize(inputBytes int64, tupleWidth int, bucketBytes int, loadFactor float64) int64 {
	if tupleWidth <= 0 || loadFactor <= 0 {
		return 0
	}
	entries := float64(inputBytes) / float64(tupleWidth)
	return int64(entries * float64(bucketBytes) / loadFactor)
}

// SelectStats captures how a selection shrinks its input (Section VI-A).
type SelectStats struct {
	// Selectivity is s = N_s / N: the fraction of rows that pass.
	Selectivity float64
	// Projectivity is p = C_s / C: the fraction of the tuple width that is
	// projected.
	Projectivity float64
}

// Measure derives the stats from observed row counts and schema widths.
func Measure(rowsIn, rowsOut int64, inWidth, outWidth int) SelectStats {
	var s SelectStats
	if rowsIn > 0 {
		s.Selectivity = float64(rowsOut) / float64(rowsIn)
	}
	if inWidth > 0 {
		s.Projectivity = float64(outWidth) / float64(inWidth)
	}
	return s
}

// Total is the materialized-intermediate size relative to the base table:
// s·p (the "Total" column of Tables III and IV).
func (s SelectStats) Total() float64 { return s.Selectivity * s.Projectivity }

// IntermediateBytes scales a base-table size by the stats.
func (s SelectStats) IntermediateBytes(baseBytes int64) int64 {
	return int64(s.Total() * float64(baseBytes))
}
