package memmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIIOverheads(t *testing.T) {
	// Q7-style cascade: three hash tables.
	hts := []int64{100 << 20, 2400 << 20, 50 << 20}
	low := LowUoTOverhead(hts)
	if low != (2400+50)<<20 {
		t.Fatalf("low overhead = %d", low)
	}
	high := HighUoTOverhead(224 << 20)
	if high != 224<<20 {
		t.Fatalf("high overhead = %d", high)
	}
	// The paper's Q07 point: with LIP the materialized intermediate
	// (224 MB) is far below the live hash tables (2.45 GB), so high UoT
	// can have the LOWER footprint.
	if high >= low {
		t.Fatal("Section VI-C example: high-UoT overhead should be lower here")
	}
}

func TestLowUoTOverheadEdgeCases(t *testing.T) {
	if LowUoTOverhead(nil) != 0 || LowUoTOverhead([]int64{5}) != 0 {
		t.Fatal("single-join cascade has no extra live hash tables")
	}
}

func TestHashTableSizeModel(t *testing.T) {
	// M = 1 GB of 100-byte tuples, 40-byte buckets, f = 0.5:
	// (1G/100)*(40/0.5) = 800 MB... 1e9/100 = 1e7 entries * 80 = 8e8.
	got := HashTableSize(1e9, 100, 40, 0.5)
	if got != 8e8 {
		t.Fatalf("ht size = %d, want 8e8", got)
	}
	if HashTableSize(100, 0, 40, 0.5) != 0 || HashTableSize(100, 8, 40, 0) != 0 {
		t.Fatal("degenerate inputs should return 0")
	}
	// Lower load factor -> bigger table.
	if HashTableSize(1e6, 10, 40, 0.25) <= HashTableSize(1e6, 10, 40, 0.75) {
		t.Fatal("size must grow as load factor drops")
	}
}

func TestMeasureAndTotal(t *testing.T) {
	// Paper Table III, Q03 on lineitem: s=53.9%, p=13.1%, total 7.0%.
	s := SelectStats{Selectivity: 0.539, Projectivity: 0.131}
	if math.Abs(s.Total()-0.0706) > 0.001 {
		t.Fatalf("total = %v", s.Total())
	}
	m := Measure(1000, 539, 157, 21)
	if math.Abs(m.Selectivity-0.539) > 1e-9 {
		t.Fatalf("selectivity = %v", m.Selectivity)
	}
	if math.Abs(m.Projectivity-21.0/157.0) > 1e-9 {
		t.Fatalf("projectivity = %v", m.Projectivity)
	}
	if got := s.IntermediateBytes(1 << 30); got <= 0 || got >= 1<<30 {
		t.Fatalf("intermediate bytes = %d", got)
	}
}

func TestMeasureZeroInputs(t *testing.T) {
	m := Measure(0, 0, 0, 10)
	if m.Selectivity != 0 || m.Projectivity != 0 {
		t.Fatal("zero inputs should measure zero")
	}
}

// Property: total is always within [0, 1] for valid measures and the
// intermediate never exceeds the base.
func TestTotalBoundedProperty(t *testing.T) {
	f := func(rowsOut uint16, widthOut uint8) bool {
		in, out := int64(60000), int64(rowsOut)%60001
		wIn, wOut := 200, int(widthOut)%201
		m := Measure(in, out, wIn, wOut)
		tot := m.Total()
		return tot >= 0 && tot <= 1 && m.IntermediateBytes(1<<20) <= 1<<20
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
