// Package hashtable implements the non-partitioned join hash table used by
// the engine: sharded for concurrent build, linear probing with fixed-size
// bucket entries and a configurable load factor (the c/f memory model of
// Section VI-B of the paper), duplicate keys, and payload tuples stored in
// row-store blocks so probe residual predicates can evaluate directly over
// build-side rows.
package hashtable

import (
	"sync"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

// entry is one bucket slot. The fixed entry size plays the role of the
// paper's bucket size c.
type entry struct {
	hash uint64 // 0 means empty (hashes are forced non-zero)
	k0   int64
	k1   int64
	blk  uint32 // payload block index within the shard
	row  uint32 // payload row within that block
}

// entryBytes is the in-memory size of one bucket slot (c in Section VI-B).
const entryBytes = 40

// Payload tuples live in per-shard row-store blocks: the first block of a
// shard is small so tiny dimension tables stay cheap, later blocks are large
// so big builds amortize allocation.
const (
	payloadBlockBytesFirst = 4 << 10
	payloadBlockBytes      = 64 << 10
)

const numShards = 64

type shard struct {
	mu      sync.Mutex
	slots   []entry
	mask    uint64
	count   int
	payload []*storage.Block
}

// Table is a concurrent join hash table keyed by one or two 64-bit integers.
type Table struct {
	shards      [numShards]shard
	shardMask   uint64 // numShards-1, or 0 for owned single-region tables
	payloadSch  *storage.Schema
	loadFactor  float64
	gauge       *stats.MemGauge // may be nil
	releaseOnce sync.Once
}

// Config parameterizes a table.
type Config struct {
	// PayloadSchema describes the build-side columns stored per entry.
	PayloadSchema *storage.Schema
	// LoadFactor is the occupancy threshold that triggers shard resize
	// (f in Section VI-B). Defaults to 0.75.
	LoadFactor float64
	// InitialCapacity is a hint of total entries. Defaults to 1024.
	InitialCapacity int
	// Owned declares the table single-writer for its whole build (a
	// partition-local clone downstream of an exchange): it is laid out as
	// one contiguous slot region and one payload chain instead of 64
	// shards, so small per-partition tables skip the per-shard fixed costs
	// (64 lazily allocated payload blocks, shard-scatter of every insert
	// batch). Concurrency comes from partition fan-out, not sharding.
	Owned bool
	// Gauge, if non-nil, tracks the table's live bytes.
	Gauge *stats.MemGauge
}

// New returns an empty table.
func New(cfg Config) *Table {
	if cfg.LoadFactor <= 0 || cfg.LoadFactor > 1 {
		cfg.LoadFactor = 0.75
	}
	if cfg.InitialCapacity <= 0 {
		cfg.InitialCapacity = 1024
	}
	t := &Table{payloadSch: cfg.PayloadSchema, loadFactor: cfg.LoadFactor, gauge: cfg.Gauge}
	var total int64
	if cfg.Owned {
		// Single region: every hash maps to shard 0; the other shard
		// structs stay empty and are never touched.
		per := nextPow2(cfg.InitialCapacity + 1)
		if per < 8 {
			per = 8
		}
		t.shards[0].slots = make([]entry, per)
		t.shards[0].mask = uint64(per - 1)
		total = int64(per) * entryBytes
	} else {
		t.shardMask = numShards - 1
		per := nextPow2(cfg.InitialCapacity/numShards + 1)
		if per < 8 {
			per = 8
		}
		for i := range t.shards {
			t.shards[i].slots = make([]entry, per)
			t.shards[i].mask = uint64(per - 1)
			total += int64(per) * entryBytes
		}
	}
	if t.gauge != nil {
		t.gauge.Add(total)
	}
	return t
}

// hashKey produces a non-zero hash for (k0, k1).
func hashKey(k0, k1 int64) uint64 {
	h := types.HashPair(k0, k1)
	if h == 0 {
		h = 1
	}
	return h
}

// shardOf selects the destination shard: hash bits 48–53 (independent of the
// low slot-index bits and the aggregation radix's top bits), masked to 0 for
// owned single-region tables.
func (t *Table) shardOf(h uint64) uint64 { return (h >> 48) & t.shardMask }

// Insert adds one entry whose payload is the projection projIdx of row
// srcRow of src. It is safe for concurrent use.
func (t *Table) Insert(k0, k1 int64, src *storage.Block, srcRow int, projIdx []int) {
	h := hashKey(k0, k1)
	s := &t.shards[t.shardOf(h)]
	s.mu.Lock()
	// Copy payload.
	pb := t.payloadBlock(s)
	prow := pb.NumRows()
	pb.AppendFrom(src, srcRow, projIdx)

	if float64(s.count+1) > t.loadFactor*float64(len(s.slots)) {
		t.grow(s)
	}
	i := h & s.mask
	for s.slots[i].hash != 0 {
		i = (i + 1) & s.mask
	}
	s.slots[i] = entry{hash: h, k0: k0, k1: k1, blk: uint32(len(s.payload) - 1), row: uint32(prow)}
	s.count++
	s.mu.Unlock()
}

// InsertScratch holds the reusable buffers of the block-granular insert
// kernels: gathered key columns, the hash vector, and the shard-partitioned
// row-index permutation. One scratch serves any number of sequential
// InsertBlock calls; operators pool scratches across work orders so the
// steady state allocates nothing per block. A scratch must not be used by
// two goroutines at once.
type InsertScratch struct {
	k0     []int64
	k1     []int64
	hashes []uint64
	rows   []int32 // row indexes grouped by shard (counting sort)
	counts [numShards]int32
}

// Keys returns the key columns gathered by the last InsertBlock /
// InsertBlockKeyOnly call (k1 is nil for single-key tables). Callers reuse
// them to feed sibling per-key structures — the LIP bloom filter build reads
// k0 instead of re-gathering the column. Valid until the next kernel call.
func (sc *InsertScratch) Keys() (k0, k1 []int64) { return sc.k0, sc.k1 }

// Hashes returns the hash vector of the last kernel call (same lifetime as
// Keys).
func (sc *InsertScratch) Hashes() []uint64 { return sc.hashes }

// gather pulls the key columns of b into the scratch (one strided
// GatherInt64 pass per column, not n cell lookups) and hashes them.
func (sc *InsertScratch) gather(b *storage.Block, keyCols []int) {
	sc.k0 = b.GatherInt64(keyCols[0], sc.k0)
	if len(keyCols) == 2 {
		sc.k1 = b.GatherInt64(keyCols[1], sc.k1)
	} else {
		sc.k1 = nil
	}
	sc.hashes = types.HashPairVec(sc.k0, sc.k1, sc.hashes)
}

// partition counting-sorts row indexes 0..n-1 by destination shard. Within a
// shard, rows keep block order, so a batched build lays payloads out exactly
// like the row-at-a-time reference path. Owned single-region tables (mask 0)
// skip the sort: every row targets shard 0 in block order.
func (sc *InsertScratch) partition(mask uint64) {
	n := len(sc.hashes)
	if cap(sc.rows) < n {
		sc.rows = make([]int32, n)
	}
	sc.rows = sc.rows[:n]
	for i := range sc.counts {
		sc.counts[i] = 0
	}
	if mask == 0 {
		sc.counts[0] = int32(n)
		for r := range sc.rows {
			sc.rows[r] = int32(r)
		}
		return
	}
	for _, h := range sc.hashes {
		sc.counts[(h>>48)&mask]++
	}
	var offs [numShards]int32
	var sum int32
	for i, c := range sc.counts {
		offs[i] = sum
		sum += c
	}
	for r, h := range sc.hashes {
		s := (h >> 48) & mask
		sc.rows[offs[s]] = int32(r)
		offs[s]++
	}
}

// InsertBlock adds every row of b in one block-granular pass: the key
// columns are gathered and hashed vectorized (types.HashPairVec), row
// indexes are partitioned by shard, and each touched shard's lock is taken
// once for the whole block — 64 acquisitions per 64K rows instead of 64K —
// with payload rows and slots bulk-appended under it. The result is
// identical to calling Insert per row in block order (same payload layout,
// same slot placement, same TotalBytes). It is safe for concurrent use with
// other inserts; sc must be private to the caller (pass a pooled scratch).
// It returns the number of shard-lock acquisitions performed.
func (t *Table) InsertBlock(b *storage.Block, keyCols []int, projIdx []int, sc *InsertScratch) int {
	return t.insertBlock(b, keyCols, projIdx, sc, false, true)
}

// InsertBlockKeyOnly is InsertBlock for key-only entries (semi/anti builds):
// no payload rows are stored, only key existence.
func (t *Table) InsertBlockKeyOnly(b *storage.Block, keyCols []int, sc *InsertScratch) int {
	return t.insertBlock(b, keyCols, nil, sc, true, true)
}

// InsertBlockOwned is InsertBlock without shard locking, for partition-local
// builds in which the table is owned outright by one partition pipeline: the
// caller guarantees no other goroutine touches the table during the build
// (the engine caps partition-local build clones at MaxDOP 1). Pair it with
// Config.Owned so the table is laid out as one contiguous region. Returns 0:
// a partition-owned build takes no shard locks at all.
func (t *Table) InsertBlockOwned(b *storage.Block, keyCols []int, projIdx []int, sc *InsertScratch) int {
	return t.insertBlock(b, keyCols, projIdx, sc, false, false)
}

// InsertBlockOwnedKeyOnly is InsertBlockOwned for key-only entries.
func (t *Table) InsertBlockOwnedKeyOnly(b *storage.Block, keyCols []int, sc *InsertScratch) int {
	return t.insertBlock(b, keyCols, nil, sc, true, false)
}

func (t *Table) insertBlock(b *storage.Block, keyCols []int, projIdx []int, sc *InsertScratch, keyOnly, locked bool) int {
	n := b.NumRows()
	if n == 0 {
		return 0
	}
	sc.gather(b, keyCols)
	sc.partition(t.shardMask)
	locks := 0
	start := int32(0)
	for sIdx := 0; sIdx < numShards; sIdx++ {
		cnt := sc.counts[sIdx]
		if cnt == 0 {
			continue
		}
		rows := sc.rows[start : start+cnt]
		start += cnt
		s := &t.shards[sIdx]
		if locked {
			s.mu.Lock()
			locks++
		}
		// Pre-size the slot array for the whole batch: same final size as
		// growing row-at-a-time, but at most log2 resizes under one lock.
		for float64(s.count+int(cnt)) > t.loadFactor*float64(len(s.slots)) {
			t.grow(s)
		}
		if keyOnly {
			for _, r := range rows {
				t.insertSlot(s, sc, r, ^uint32(0), 0)
			}
		} else {
			// Bulk-copy payload rows block-at-a-time (AppendFromMany
			// resolves column layouts once per payload block, not once per
			// cell), then write the slots for the rows that landed there.
			pos := 0
			for pos < len(rows) {
				pb := t.payloadBlock(s)
				base := pb.NumRows()
				took := pb.AppendFromMany(b, rows[pos:], projIdx)
				blk := uint32(len(s.payload) - 1)
				for j := 0; j < took; j++ {
					t.insertSlot(s, sc, rows[pos+j], blk, uint32(base+j))
				}
				pos += took
			}
		}
		if locked {
			s.mu.Unlock()
		}
	}
	return locks
}

// insertSlot writes the bucket entry for scratch row r; caller holds the
// shard lock and has pre-grown the slot array for the batch.
func (t *Table) insertSlot(s *shard, sc *InsertScratch, r int32, blk, prow uint32) {
	h := sc.hashes[r]
	i := h & s.mask
	for s.slots[i].hash != 0 {
		i = (i + 1) & s.mask
	}
	k0 := sc.k0[r]
	var k1 int64
	if sc.k1 != nil {
		k1 = sc.k1[r]
	}
	s.slots[i] = entry{hash: h, k0: k0, k1: k1, blk: blk, row: prow}
	s.count++
}

// payloadBlock returns the shard's current non-full payload block,
// allocating a new one if needed; caller holds the shard lock.
func (t *Table) payloadBlock(s *shard) *storage.Block {
	if n := len(s.payload); n > 0 && !s.payload[n-1].Full() {
		return s.payload[n-1]
	}
	size := payloadBlockBytes
	if len(s.payload) == 0 {
		size = payloadBlockBytesFirst
	}
	pb := storage.NewBlock(t.payloadSch, storage.RowStore, size)
	s.payload = append(s.payload, pb)
	if t.gauge != nil {
		t.gauge.Add(int64(pb.AllocBytes()))
	}
	return pb
}

// InsertKeyOnly adds an entry with no payload columns (semi/anti join builds
// that need only key existence). PayloadSchema must still be non-nil; a
// zero-column schema is fine.
func (t *Table) InsertKeyOnly(k0, k1 int64) {
	h := hashKey(k0, k1)
	s := &t.shards[t.shardOf(h)]
	s.mu.Lock()
	if float64(s.count+1) > t.loadFactor*float64(len(s.slots)) {
		t.grow(s)
	}
	i := h & s.mask
	for s.slots[i].hash != 0 {
		i = (i + 1) & s.mask
	}
	s.slots[i] = entry{hash: h, k0: k0, k1: k1, blk: ^uint32(0)}
	s.count++
	s.mu.Unlock()
}

// grow doubles a shard's slot array; caller holds the shard lock.
func (t *Table) grow(s *shard) {
	old := s.slots
	ns := make([]entry, len(old)*2)
	mask := uint64(len(ns) - 1)
	for _, e := range old {
		if e.hash == 0 {
			continue
		}
		i := e.hash & mask
		for ns[i].hash != 0 {
			i = (i + 1) & mask
		}
		ns[i] = e
	}
	s.slots = ns
	s.mask = mask
	if t.gauge != nil {
		t.gauge.Add(int64(len(old)) * entryBytes) // net growth = old size
	}
}

// Lookup calls fn for every entry matching (k0, k1), passing the payload
// block and row (nil block for key-only entries). fn returns false to stop
// early (semi-join existence checks). Lookup is safe for concurrent use with
// other lookups; the table must not be built concurrently with probing — the
// scheduler's blocking build→probe edge guarantees that.
func (t *Table) Lookup(k0, k1 int64, fn func(pb *storage.Block, row int) bool) {
	t.LookupHashed(hashKey(k0, k1), k0, k1, fn)
}

// LookupHashed is Lookup with the key hash precomputed (h must come from the
// same hash family, i.e. types.HashPairVec or HashPair forced non-zero).
// The probe kernel hashes a whole block of keys in one vectorized pass and
// probes with this to avoid re-hashing per row.
func (t *Table) LookupHashed(h uint64, k0, k1 int64, fn func(pb *storage.Block, row int) bool) {
	s := &t.shards[t.shardOf(h)]
	i := h & s.mask
	for {
		e := &s.slots[i]
		if e.hash == 0 {
			return
		}
		if e.hash == h && e.k0 == k0 && e.k1 == k1 {
			var pb *storage.Block
			if e.blk != ^uint32(0) {
				pb = s.payload[e.blk]
			}
			if !fn(pb, int(e.row)) {
				return
			}
		}
		i = (i + 1) & s.mask
	}
}

// Contains reports whether any entry matches (k0, k1).
func (t *Table) Contains(k0, k1 int64) bool {
	found := false
	t.Lookup(k0, k1, func(*storage.Block, int) bool {
		found = true
		return false
	})
	return found
}

// Len returns the total number of entries.
func (t *Table) Len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += t.shards[i].count
		t.shards[i].mu.Unlock()
	}
	return n
}

// TotalBytes returns the table's current memory footprint: bucket slots plus
// payload blocks. This is the |H| of Section VI.
func (t *Table) TotalBytes() int64 {
	var n int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += int64(len(s.slots)) * entryBytes
		for _, pb := range s.payload {
			n += int64(pb.AllocBytes())
		}
		s.mu.Unlock()
	}
	return n
}

// UsedBytes returns the table's randomly-accessed working set: bucket slots
// plus payload bytes actually occupied by tuples. The cache model sizes
// probe-miss probabilities with this (allocation slack in payload blocks is
// never touched by probes).
func (t *Table) UsedBytes() int64 {
	var n int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += int64(len(s.slots)) * entryBytes
		for _, pb := range s.payload {
			n += int64(pb.UsedBytes())
		}
		s.mu.Unlock()
	}
	return n
}

// Release returns the table's bytes to the gauge; call when the table's
// consumer operator finishes. Release is idempotent, so plans in which
// several probes share one hash table release it safely.
func (t *Table) Release() {
	t.releaseOnce.Do(func() {
		if t.gauge != nil {
			t.gauge.Sub(t.TotalBytes())
		}
	})
}

// PayloadSchema returns the build-side payload schema.
func (t *Table) PayloadSchema() *storage.Schema { return t.payloadSch }

// EntryBytes returns the fixed bucket size c used by this implementation.
func EntryBytes() int { return entryBytes }

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
