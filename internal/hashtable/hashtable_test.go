package hashtable

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

func payloadSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "v", Type: types.Int64},
		storage.Column{Name: "f", Type: types.Float64},
	)
}

func srcBlock(rows int) *storage.Block {
	b := storage.NewBlock(payloadSchema(), storage.ColumnStore, rows*16+64)
	for i := 0; i < rows; i++ {
		b.AppendRow(types.NewInt64(int64(i*10)), types.NewFloat64(float64(i)+0.5))
	}
	return b
}

func TestInsertLookup(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema()})
	src := srcBlock(10)
	for i := 0; i < 10; i++ {
		ht.Insert(int64(i), 0, src, i, []int{0, 1})
	}
	if ht.Len() != 10 {
		t.Fatalf("Len = %d", ht.Len())
	}
	for i := 0; i < 10; i++ {
		var got int64 = -1
		ht.Lookup(int64(i), 0, func(pb *storage.Block, row int) bool {
			got = pb.Int64At(0, row)
			return true
		})
		if got != int64(i*10) {
			t.Errorf("key %d payload = %d", i, got)
		}
	}
	if ht.Contains(99, 0) {
		t.Error("phantom key")
	}
}

func TestDuplicateKeys(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema()})
	src := srcBlock(5)
	for i := 0; i < 5; i++ {
		ht.Insert(7, 0, src, i, []int{0, 1})
	}
	var vals []int64
	ht.Lookup(7, 0, func(pb *storage.Block, row int) bool {
		vals = append(vals, pb.Int64At(0, row))
		return true
	})
	if len(vals) != 5 {
		t.Fatalf("got %d duplicates, want 5", len(vals))
	}
	seen := map[int64]bool{}
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("duplicate payloads collapsed: %v", vals)
	}
	// Early stop: fn returning false.
	n := 0
	ht.Lookup(7, 0, func(*storage.Block, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestCompositeKeys(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema()})
	src := srcBlock(2)
	ht.Insert(1, 2, src, 0, []int{0, 1})
	ht.Insert(2, 1, src, 1, []int{0, 1})
	if !ht.Contains(1, 2) || !ht.Contains(2, 1) {
		t.Fatal("composite keys missing")
	}
	if ht.Contains(1, 1) || ht.Contains(2, 2) {
		t.Fatal("composite key confusion")
	}
}

func TestKeyOnlyEntries(t *testing.T) {
	ht := New(Config{PayloadSchema: storage.NewSchema()})
	ht.InsertKeyOnly(5, 0)
	if !ht.Contains(5, 0) || ht.Contains(6, 0) {
		t.Fatal("key-only insert broken")
	}
	ht.Lookup(5, 0, func(pb *storage.Block, _ int) bool {
		if pb != nil {
			t.Error("key-only entry should have nil payload block")
		}
		return true
	})
}

func TestGrowthPreservesEntries(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema(), InitialCapacity: 64, LoadFactor: 0.5})
	src := srcBlock(100)
	const n = 50000
	for i := 0; i < n; i++ {
		ht.Insert(int64(i), 0, src, i%100, []int{0, 1})
	}
	if ht.Len() != n {
		t.Fatalf("Len = %d", ht.Len())
	}
	for i := 0; i < n; i += 97 {
		if !ht.Contains(int64(i), 0) {
			t.Fatalf("key %d lost after growth", i)
		}
	}
	if ht.Contains(n+1, 0) {
		t.Fatal("phantom after growth")
	}
}

func TestConcurrentBuild(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema()})
	src := srcBlock(100)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ht.Insert(int64(w*per+i), 0, src, i%100, []int{0, 1})
			}
		}(w)
	}
	wg.Wait()
	if ht.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", ht.Len(), workers*per)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i += 501 {
			if !ht.Contains(int64(w*per+i), 0) {
				t.Fatalf("missing key %d", w*per+i)
			}
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	var g stats.MemGauge
	ht := New(Config{PayloadSchema: payloadSchema(), Gauge: &g})
	if g.Live() <= 0 {
		t.Fatal("initial slots should be accounted")
	}
	src := srcBlock(100)
	for i := 0; i < 10000; i++ {
		ht.Insert(int64(i), 0, src, i%100, []int{0, 1})
	}
	if g.Live() != ht.TotalBytes() {
		t.Fatalf("gauge %d != TotalBytes %d", g.Live(), ht.TotalBytes())
	}
	ht.Release()
	if g.Live() != 0 {
		t.Fatalf("after release live = %d", g.Live())
	}
	if g.High() != ht.TotalBytes() {
		t.Fatalf("high water %d != %d", g.High(), ht.TotalBytes())
	}
}

// keyedSchema is a build-input schema: two key columns plus two payload
// columns, mimicking what a build operator feeds the table.
func keyedSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "k0", Type: types.Int64},
		storage.Column{Name: "k1", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Int64},
		storage.Column{Name: "f", Type: types.Float64},
	)
}

// randKeyedBlock fills a block with n rows of random keys drawn from a small
// domain (forcing duplicates) and distinct payloads.
func randKeyedBlock(rng *rand.Rand, n, keyDomain int) *storage.Block {
	b := storage.NewBlock(keyedSchema(), storage.ColumnStore, n*32+64)
	for i := 0; i < n; i++ {
		b.AppendRow(
			types.NewInt64(int64(rng.Intn(keyDomain))),
			types.NewInt64(int64(rng.Intn(3))),
			types.NewInt64(int64(i)),
			types.NewFloat64(float64(i)+0.25),
		)
	}
	return b
}

// lookupState snapshots everything observable about one key: the multiset of
// payload values and the entry count.
func lookupPayloads(t *testing.T, ht *Table, k0, k1 int64) []int64 {
	t.Helper()
	var vals []int64
	ht.Lookup(k0, k1, func(pb *storage.Block, row int) bool {
		if pb == nil {
			vals = append(vals, -1) // key-only marker
		} else {
			vals = append(vals, pb.Int64At(0, row))
		}
		return true
	})
	return vals
}

// TestInsertBlockEquivalence proves the batch kernel is a drop-in for the
// row-at-a-time reference path: identical Lookup results, Len, and
// TotalBytes on randomized blocks with duplicate keys, for single-key,
// two-key, and key-only tables.
func TestInsertBlockEquivalence(t *testing.T) {
	paySch := storage.NewSchema(
		storage.Column{Name: "v", Type: types.Int64},
		storage.Column{Name: "f", Type: types.Float64},
	)
	projIdx := []int{2, 3}
	cases := []struct {
		name    string
		keyCols []int
		keyOnly bool
	}{
		{"single-key", []int{0}, false},
		{"two-key", []int{0, 1}, false},
		{"key-only", []int{0, 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			sch := paySch
			if tc.keyOnly {
				sch = storage.NewSchema()
			}
			ref := New(Config{PayloadSchema: sch, InitialCapacity: 16})
			bat := New(Config{PayloadSchema: sch, InitialCapacity: 16})
			sc := &InsertScratch{}
			for blk := 0; blk < 8; blk++ {
				b := randKeyedBlock(rng, 100+rng.Intn(400), 50)
				// Reference: row-at-a-time in block order.
				for r := 0; r < b.NumRows(); r++ {
					k0 := b.Int64At(tc.keyCols[0], r)
					var k1 int64
					if len(tc.keyCols) == 2 {
						k1 = b.Int64At(tc.keyCols[1], r)
					}
					if tc.keyOnly {
						ref.InsertKeyOnly(k0, k1)
					} else {
						ref.Insert(k0, k1, b, r, projIdx)
					}
				}
				// Batched: one kernel call per block, reusing one scratch.
				if tc.keyOnly {
					bat.InsertBlockKeyOnly(b, tc.keyCols, sc)
				} else {
					if locks := bat.InsertBlock(b, tc.keyCols, projIdx, sc); locks < 1 || locks > 64 {
						t.Fatalf("InsertBlock locks = %d", locks)
					}
				}
			}
			if ref.Len() != bat.Len() {
				t.Fatalf("Len: ref %d, batch %d", ref.Len(), bat.Len())
			}
			if ref.TotalBytes() != bat.TotalBytes() {
				t.Fatalf("TotalBytes: ref %d, batch %d", ref.TotalBytes(), bat.TotalBytes())
			}
			if ref.UsedBytes() != bat.UsedBytes() {
				t.Fatalf("UsedBytes: ref %d, batch %d", ref.UsedBytes(), bat.UsedBytes())
			}
			for k0 := int64(0); k0 < 50; k0++ {
				for k1 := int64(0); k1 < 3; k1++ {
					rv := lookupPayloads(t, ref, k0, k1)
					bv := lookupPayloads(t, bat, k0, k1)
					if len(rv) != len(bv) {
						t.Fatalf("key (%d,%d): ref %d entries, batch %d", k0, k1, len(rv), len(bv))
					}
					seen := map[int64]int{}
					for _, v := range rv {
						seen[v]++
					}
					for _, v := range bv {
						seen[v]--
					}
					for v, c := range seen {
						if c != 0 {
							t.Fatalf("key (%d,%d): payload multiset differs at %d", k0, k1, v)
						}
					}
				}
			}
		})
	}
}

// TestInsertBlockConcurrent builds one table from many goroutines, each
// running the batch kernel with its own scratch (run under -race).
func TestInsertBlockConcurrent(t *testing.T) {
	ht := New(Config{PayloadSchema: storage.NewSchema(
		storage.Column{Name: "v", Type: types.Int64},
		storage.Column{Name: "f", Type: types.Float64},
	), InitialCapacity: 64})
	const workers, blocksPer, rowsPer = 8, 6, 512
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sc := &InsertScratch{}
			sch := keyedSchema()
			for bi := 0; bi < blocksPer; bi++ {
				b := storage.NewBlock(sch, storage.ColumnStore, rowsPer*32+64)
				for i := 0; i < rowsPer; i++ {
					k := int64(w*blocksPer*rowsPer + bi*rowsPer + i)
					b.AppendRow(types.NewInt64(k), types.NewInt64(0),
						types.NewInt64(int64(rng.Intn(1000))), types.NewFloat64(1.5))
				}
				ht.InsertBlock(b, []int{0}, []int{2, 3}, sc)
			}
		}(w)
	}
	wg.Wait()
	want := workers * blocksPer * rowsPer
	if ht.Len() != want {
		t.Fatalf("Len = %d, want %d", ht.Len(), want)
	}
	for k := 0; k < want; k += 997 {
		if !ht.Contains(int64(k), 0) {
			t.Fatalf("missing key %d", k)
		}
	}
}

// TestLookupHashed checks the pre-hashed probe entry point against Lookup.
func TestLookupHashed(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema()})
	src := srcBlock(10)
	for i := 0; i < 10; i++ {
		ht.Insert(int64(i), int64(i%2), src, i, []int{0, 1})
	}
	k0s := make([]int64, 10)
	k1s := make([]int64, 10)
	for i := range k0s {
		k0s[i] = int64(i)
		k1s[i] = int64(i % 2)
	}
	hashes := types.HashPairVec(k0s, k1s, nil)
	for i := range k0s {
		var got int64 = -1
		ht.LookupHashed(hashes[i], k0s[i], k1s[i], func(pb *storage.Block, row int) bool {
			got = pb.Int64At(0, row)
			return true
		})
		if got != int64(i*10) {
			t.Errorf("LookupHashed key %d payload = %d", i, got)
		}
	}
}

// Property: a table agrees with a reference map for arbitrary key multisets.
func TestLookupMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64, nKeys uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nKeys%2000) + 1
		ht := New(Config{PayloadSchema: payloadSchema(), InitialCapacity: 16})
		ref := map[int64]int{}
		src := srcBlock(1)
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(200)) // force duplicates
			ht.Insert(k, 0, src, 0, []int{0, 1})
			ref[k]++
		}
		for k := int64(0); k < 200; k++ {
			count := 0
			ht.Lookup(k, 0, func(*storage.Block, int) bool { count++; return true })
			if count != ref[k] {
				return false
			}
		}
		return ht.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestOwnedTableMatchesShared: an owned single-region table built with
// InsertBlockOwned must hold exactly the entries of a shared sharded build of
// the same blocks, and the owned build must take zero shard locks.
func TestOwnedTableMatchesShared(t *testing.T) {
	paySch := storage.NewSchema(
		storage.Column{Name: "v", Type: types.Int64},
		storage.Column{Name: "f", Type: types.Float64},
	)
	projIdx := []int{2, 3}
	rng := rand.New(rand.NewSource(7))
	shared := New(Config{PayloadSchema: paySch, InitialCapacity: 16})
	owned := New(Config{PayloadSchema: paySch, InitialCapacity: 16, Owned: true})
	sc1, sc2 := &InsertScratch{}, &InsertScratch{}
	for blk := 0; blk < 8; blk++ {
		b := randKeyedBlock(rng, 100+rng.Intn(400), 50)
		shared.InsertBlock(b, []int{0}, projIdx, sc1)
		if locks := owned.InsertBlockOwned(b, []int{0}, projIdx, sc2); locks != 0 {
			t.Fatalf("owned insert took %d shard locks", locks)
		}
	}
	if shared.Len() != owned.Len() {
		t.Fatalf("Len: shared %d, owned %d", shared.Len(), owned.Len())
	}
	for k0 := int64(0); k0 < 50; k0++ {
		sv := lookupPayloads(t, shared, k0, 0)
		ov := lookupPayloads(t, owned, k0, 0)
		if len(sv) != len(ov) {
			t.Fatalf("key %d: shared %d entries, owned %d", k0, len(sv), len(ov))
		}
		seen := map[int64]int{}
		for _, v := range sv {
			seen[v]++
		}
		for _, v := range ov {
			seen[v]--
		}
		for v, c := range seen {
			if c != 0 {
				t.Fatalf("key %d: payload multiset differs at %d", k0, v)
			}
		}
	}
	if ob, sb := owned.TotalBytes(), shared.TotalBytes(); ob <= 0 || ob >= sb {
		t.Fatalf("owned TotalBytes %d not below shared %d", ob, sb)
	}
}
