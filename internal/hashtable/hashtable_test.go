package hashtable

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/types"
)

func payloadSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "v", Type: types.Int64},
		storage.Column{Name: "f", Type: types.Float64},
	)
}

func srcBlock(rows int) *storage.Block {
	b := storage.NewBlock(payloadSchema(), storage.ColumnStore, rows*16+64)
	for i := 0; i < rows; i++ {
		b.AppendRow(types.NewInt64(int64(i*10)), types.NewFloat64(float64(i)+0.5))
	}
	return b
}

func TestInsertLookup(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema()})
	src := srcBlock(10)
	for i := 0; i < 10; i++ {
		ht.Insert(int64(i), 0, src, i, []int{0, 1})
	}
	if ht.Len() != 10 {
		t.Fatalf("Len = %d", ht.Len())
	}
	for i := 0; i < 10; i++ {
		var got int64 = -1
		ht.Lookup(int64(i), 0, func(pb *storage.Block, row int) bool {
			got = pb.Int64At(0, row)
			return true
		})
		if got != int64(i*10) {
			t.Errorf("key %d payload = %d", i, got)
		}
	}
	if ht.Contains(99, 0) {
		t.Error("phantom key")
	}
}

func TestDuplicateKeys(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema()})
	src := srcBlock(5)
	for i := 0; i < 5; i++ {
		ht.Insert(7, 0, src, i, []int{0, 1})
	}
	var vals []int64
	ht.Lookup(7, 0, func(pb *storage.Block, row int) bool {
		vals = append(vals, pb.Int64At(0, row))
		return true
	})
	if len(vals) != 5 {
		t.Fatalf("got %d duplicates, want 5", len(vals))
	}
	seen := map[int64]bool{}
	for _, v := range vals {
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("duplicate payloads collapsed: %v", vals)
	}
	// Early stop: fn returning false.
	n := 0
	ht.Lookup(7, 0, func(*storage.Block, int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestCompositeKeys(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema()})
	src := srcBlock(2)
	ht.Insert(1, 2, src, 0, []int{0, 1})
	ht.Insert(2, 1, src, 1, []int{0, 1})
	if !ht.Contains(1, 2) || !ht.Contains(2, 1) {
		t.Fatal("composite keys missing")
	}
	if ht.Contains(1, 1) || ht.Contains(2, 2) {
		t.Fatal("composite key confusion")
	}
}

func TestKeyOnlyEntries(t *testing.T) {
	ht := New(Config{PayloadSchema: storage.NewSchema()})
	ht.InsertKeyOnly(5, 0)
	if !ht.Contains(5, 0) || ht.Contains(6, 0) {
		t.Fatal("key-only insert broken")
	}
	ht.Lookup(5, 0, func(pb *storage.Block, _ int) bool {
		if pb != nil {
			t.Error("key-only entry should have nil payload block")
		}
		return true
	})
}

func TestGrowthPreservesEntries(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema(), InitialCapacity: 64, LoadFactor: 0.5})
	src := srcBlock(100)
	const n = 50000
	for i := 0; i < n; i++ {
		ht.Insert(int64(i), 0, src, i%100, []int{0, 1})
	}
	if ht.Len() != n {
		t.Fatalf("Len = %d", ht.Len())
	}
	for i := 0; i < n; i += 97 {
		if !ht.Contains(int64(i), 0) {
			t.Fatalf("key %d lost after growth", i)
		}
	}
	if ht.Contains(n+1, 0) {
		t.Fatal("phantom after growth")
	}
}

func TestConcurrentBuild(t *testing.T) {
	ht := New(Config{PayloadSchema: payloadSchema()})
	src := srcBlock(100)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ht.Insert(int64(w*per+i), 0, src, i%100, []int{0, 1})
			}
		}(w)
	}
	wg.Wait()
	if ht.Len() != workers*per {
		t.Fatalf("Len = %d, want %d", ht.Len(), workers*per)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i += 501 {
			if !ht.Contains(int64(w*per+i), 0) {
				t.Fatalf("missing key %d", w*per+i)
			}
		}
	}
}

func TestMemoryAccounting(t *testing.T) {
	var g stats.MemGauge
	ht := New(Config{PayloadSchema: payloadSchema(), Gauge: &g})
	if g.Live() <= 0 {
		t.Fatal("initial slots should be accounted")
	}
	src := srcBlock(100)
	for i := 0; i < 10000; i++ {
		ht.Insert(int64(i), 0, src, i%100, []int{0, 1})
	}
	if g.Live() != ht.TotalBytes() {
		t.Fatalf("gauge %d != TotalBytes %d", g.Live(), ht.TotalBytes())
	}
	ht.Release()
	if g.Live() != 0 {
		t.Fatalf("after release live = %d", g.Live())
	}
	if g.High() != ht.TotalBytes() {
		t.Fatalf("high water %d != %d", g.High(), ht.TotalBytes())
	}
}

// Property: a table agrees with a reference map for arbitrary key multisets.
func TestLookupMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64, nKeys uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nKeys%2000) + 1
		ht := New(Config{PayloadSchema: payloadSchema(), InitialCapacity: 16})
		ref := map[int64]int{}
		src := srcBlock(1)
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(200)) // force duplicates
			ht.Insert(k, 0, src, 0, []int{0, 1})
			ref[k]++
		}
		for k := int64(0); k < 200; k++ {
			count := 0
			ht.Lookup(k, 0, func(*storage.Block, int) bool { count++; return true })
			if count != ref[k] {
				return false
			}
		}
		return ht.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
