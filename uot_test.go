package uot

import (
	"math"
	"testing"
)

// TestFacadeEndToEnd drives the whole public API surface: DB/table creation,
// loading, plan building with expressions, execution at both UoT extremes,
// the monet baseline, and the model helpers.
func TestFacadeEndToEnd(t *testing.T) {
	db := NewDB(4<<10, ColumnStore)
	tbl := db.CreateTable("t", NewSchema(
		Column{Name: "k", Type: TInt64},
		Column{Name: "v", Type: TFloat64},
		Column{Name: "d", Type: TDate},
		Column{Name: "s", Type: TChar, Width: 8},
	))
	l := NewLoader(tbl)
	for i := 0; i < 1000; i++ {
		l.Append(Int64Val(int64(i%10)), Float64Val(float64(i)), DateVal(int32(i)), StringVal("tag"))
	}
	l.Close()

	build := func() *Builder {
		b := NewBuilder()
		s := tbl.Schema()
		sel := b.ScanSelect(SelectSpec{
			Name: "scan", Base: tbl,
			Pred: And(Ge(Col(s, "v"), Float(100)), Like(Col(s, "s"), "ta%")),
			Proj: []Expr{Col(s, "k"), Col(s, "v")}, ProjNames: []string{"k", "v"},
		})
		agg := b.Agg(sel, AggOpSpec{
			Name:         "agg",
			GroupBy:      []Expr{Col(sel.Schema, "k")},
			GroupByNames: []string{"k"},
			Aggs: []AggSpec{
				{Func: Sum, Arg: Col(sel.Schema, "v"), Name: "sv"},
				{Func: Count, Name: "n"},
			},
		})
		srt := b.Sort(agg, SortSpec{Name: "sort", Terms: []SortTerm{{Key: Col(agg.Schema, "k")}}})
		b.Collect(srt)
		return b
	}

	low, err := Execute(build(), Options{Workers: 4, UoTBlocks: 1, TempBlockBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Execute(build(), Options{Workers: 4, UoTBlocks: UoTTable, TempBlockBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	mon, err := ExecuteMonetStyle(build(), 4)
	if err != nil {
		t.Fatal(err)
	}

	a, b, c := Rows(low.Table), Rows(high.Table), Rows(mon.Table)
	if len(a) != 10 || len(b) != 10 || len(c) != 10 {
		t.Fatalf("group counts: %d %d %d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i][0].I != b[i][0].I || a[i][2].I != b[i][2].I || a[i][2].I != c[i][2].I {
			t.Fatalf("row %d differs across engines: %v %v %v", i, a[i], b[i], c[i])
		}
		if math.Abs(a[i][1].F-c[i][1].F) > 1e-9 {
			t.Fatalf("row %d sums differ: %v vs %v", i, a[i][1].F, c[i][1].F)
		}
	}
}

func TestFacadeTPCH(t *testing.T) {
	d := LoadTPCH(0.002, 32<<10, ColumnStore)
	if got := len(TPCHQueries()); got != 22 {
		t.Fatalf("queries = %d", got)
	}
	plan, err := BuildTPCH(d, 6, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(plan, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rows := Rows(res.Table); len(rows) != 1 {
		t.Fatalf("q6 rows = %d", len(rows))
	}
	if _, err := BuildTPCHWith(d, 7, TPCHOpts{Staged: true}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeModels(t *testing.T) {
	m := NewCostModel(2<<20, 20)
	if r := m.HighRegime().Ratio(); r < 0.5 || r > 2 {
		t.Fatalf("Eq.1 ratio = %v", r)
	}
	if HashTableSize(1e6, 10, 40, 0.5) != 8e6 {
		t.Fatal("hash table model wrong through facade")
	}
	if LowUoTOverhead([]int64{1, 2, 3}) != 5 || HighUoTOverhead(7) != 7 {
		t.Fatal("Table II helpers wrong through facade")
	}
	sim := NewCacheSim()
	if sim.ScannedBase(1<<20) <= 0 {
		t.Fatal("cache sim unusable through facade")
	}
}
