// Command tpchtool generates a TPC-H (or SSB) dataset and either summarizes
// it or runs one query with full per-operator statistics — the interactive
// companion to cmd/uotbench.
//
//	tpchtool -sf 0.05 -summary
//	tpchtool -sf 0.05 -q 7 -uot 1 -workers 8 -lip
//	tpchtool -ssb -sf 0.05 -ssbq q3.1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ssb"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.02, "scale factor")
	blockKB := flag.Int("block", 128, "block size (KiB)")
	format := flag.String("format", "column", "base-table format: column|row")
	summary := flag.Bool("summary", false, "print dataset summary and exit")
	q := flag.Int("q", 0, "TPC-H query to run (1-22)")
	ssbMode := flag.Bool("ssb", false, "use the Star Schema Benchmark instead of TPC-H")
	ssbQ := flag.String("ssbq", "", "SSB query to run (q1.1, q2.1, q3.1, q4.1)")
	uotFlag := flag.Int("uot", 1, "unit of transfer in blocks (0 = whole table)")
	workers := flag.Int("workers", 8, "worker threads")
	lip := flag.Bool("lip", false, "enable LIP bloom filters (TPC-H)")
	staged := flag.Bool("staged", false, "staged one-join-at-a-time execution (TPC-H Q7)")
	rows := flag.Int("rows", 10, "result rows to print")
	flag.Parse()

	f := storage.ColumnStore
	if *format == "row" {
		f = storage.RowStore
	}
	uot := *uotFlag
	if uot == 0 {
		uot = core.UoTTable
	}
	opts := engine.Options{Workers: *workers, UoTBlocks: uot, TempBlockBytes: *blockKB << 10}

	if *ssbMode {
		d := ssb.Load(*sf, *blockKB<<10, f)
		if *summary || *ssbQ == "" {
			fmt.Printf("SSB SF %.3g (%s store, %d KiB blocks)\n", *sf, f, *blockKB)
			for _, name := range []string{"lineorder", "date", "customer", "supplier", "part"} {
				printTable(d.DB.Catalog.MustGet(name))
			}
			fmt.Println("queries:", ssb.Flights())
			return
		}
		b, err := ssb.Build(d, *ssbQ)
		if err != nil {
			log.Fatal(err)
		}
		runAndReport(b, opts, *rows)
		return
	}

	d := tpch.Load(*sf, *blockKB<<10, f)
	if *summary || *q == 0 {
		fmt.Printf("TPC-H SF %.3g (%s store, %d KiB blocks)\n", *sf, f, *blockKB)
		for _, name := range []string{"lineitem", "orders", "customer", "part", "partsupp", "supplier", "nation", "region"} {
			printTable(d.Table(name))
		}
		fmt.Println("queries:", tpch.Numbers())
		return
	}
	b, err := tpch.Build(d, *q, tpch.QueryOpts{LIP: *lip, Staged: *staged})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	runAndReport(b, opts, *rows)
}

func printTable(t *storage.Table) {
	fmt.Printf("  %-10s %9d rows %6d blocks %8.2f MiB (%d B/row)\n",
		t.Name(), t.NumRows(), t.NumBlocks(),
		float64(t.UsedBytes())/(1<<20), t.Schema().RowWidth())
}

func runAndReport(b *engine.Builder, opts engine.Options, maxRows int) {
	res, err := engine.Execute(b, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wall %v | peak temp %.2f MiB | peak hash %.2f MiB | pool checkouts %d\n\n",
		res.Run.WallTime().Round(10*time.Microsecond),
		float64(res.Run.Intermediates.High())/(1<<20),
		float64(res.Run.HashTables.High())/(1<<20),
		res.Run.Checkouts())

	fmt.Printf("%-24s %6s %10s %10s %12s %12s\n", "operator", "tasks", "rows_in", "rows_out", "total_ms", "avg_task_us")
	for _, op := range res.Run.PerOp() {
		fmt.Printf("%-24s %6d %10d %10d %12.2f %12.1f\n",
			op.Name, op.Count, op.Rows, op.RowsOut,
			float64(op.WallTotal.Microseconds())/1000,
			avgUs(op))
	}

	all := engine.Rows(res.Table)
	fmt.Printf("\nresult: %d rows\n", len(all))
	for i, row := range all {
		if i >= maxRows {
			fmt.Printf("  ... %d more\n", len(all)-maxRows)
			break
		}
		fmt.Println("  " + engine.FormatRow(row))
	}
}

func avgUs(op stats.OpTotals) float64 {
	if op.Count == 0 {
		return 0
	}
	return float64(op.WallTotal.Microseconds()) / float64(op.Count)
}
