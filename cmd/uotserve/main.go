// Command uotserve exposes the concurrent serving layer (internal/session)
// over HTTP: a loaded TPC-H dataset, one shared worker pool, one global
// memory budget, and admission control with load shedding.
//
// Usage:
//
//	uotserve [-addr :8080] [-sf 0.05] [-workers 8] [-concurrent 4]
//	         [-queue 8] [-budget-mb 256] [-uot 1] [-lip]
//	         [-reuse] [-reuse-dir DIR]
//
// Endpoints:
//
//	GET /query?q=3[&priority=2][&deadline_ms=500][&limit=10]
//	    Runs TPC-H query q through admission; 200 with a JSON result on
//	    success, 429 when shed (queue full / over budget), 504 on a blown
//	    deadline, 400/500 otherwise.
//	GET /stats
//	    Admission counters, occupancy, live memory, and (with -reuse) the
//	    result cache's hit/admission/eviction counters as JSON.
//	GET /metrics
//	    Prometheus-style metrics scrape of the shared tracer.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/session"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/trace"
)

type server struct {
	data  *tpch.Dataset
	sess  *session.Session
	tr    *trace.Tracer
	lip   bool
	start time.Time
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	workers := flag.Int("workers", 8, "shared worker-pool size")
	concurrent := flag.Int("concurrent", 4, "max concurrently admitted queries")
	queue := flag.Int("queue", 8, "admission wait-queue depth")
	budgetMB := flag.Int64("budget-mb", 256, "global temporary-block budget (MiB)")
	uotBlocks := flag.Int("uot", 1, "default unit of transfer in blocks")
	lip := flag.Bool("lip", false, "build plans with LIP bloom filters")
	reuseOn := flag.Bool("reuse", false, "enable the cross-query result cache (budget: a quarter of -budget-mb)")
	reuseDir := flag.String("reuse-dir", "", "with -reuse: directory for cooling cold cache entries to disk")
	flag.Parse()

	log.Printf("loading TPC-H SF=%g ...", *sf)
	data := tpch.Load(*sf, 128<<10, storage.ColumnStore)
	tr := trace.New(0)
	sess := session.Open(session.Config{
		Workers:       *workers,
		MaxConcurrent: *concurrent,
		QueueDepth:    *queue,
		MemoryBudget:  *budgetMB << 20,
		UoTBlocks:     *uotBlocks,
		Trace:         tr,
		Reuse:         *reuseOn,
		ReuseDir:      *reuseDir,
	})
	s := &server{data: data, sess: sess, tr: tr, lip: *lip, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	log.Printf("serving TPC-H queries %v on %s (workers=%d concurrent=%d queue=%d budget=%dMiB)",
		tpch.Numbers(), *addr, *workers, *concurrent, *queue, *budgetMB)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

type queryResponse struct {
	Query    int      `json:"query"`     // session-assigned query id
	TPCH     int      `json:"tpch"`      // TPC-H query number
	Rows     int64    `json:"rows"`      // result cardinality
	QueuedMS float64  `json:"queued_ms"` // admission wait
	TotalMS  float64  `json:"total_ms"`  // wait + execution
	Sample   []string `json:"sample,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	q, err := strconv.Atoi(r.URL.Query().Get("q"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad or missing q parameter: %v", err))
		return
	}
	priority, _ := strconv.Atoi(r.URL.Query().Get("priority"))
	deadlineMS, _ := strconv.Atoi(r.URL.Query().Get("deadline_ms"))
	limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))

	req := session.Request{
		Build: func() *engine.Builder {
			b, err := tpch.Build(s.data, q, tpch.QueryOpts{LIP: s.lip})
			if err != nil {
				panic(err) // validated below before Submit
			}
			return b
		},
		Label:    fmt.Sprintf("Q%d", q),
		Priority: priority,
		Context:  r.Context(),
		Deadline: time.Duration(deadlineMS) * time.Millisecond,
	}
	// Validate the query number up front so a bad request is a 400, not a
	// panic inside Submit.
	if _, err := tpch.Build(s.data, q, tpch.QueryOpts{LIP: s.lip}); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	resp, err := s.sess.Submit(req)
	if err != nil {
		switch {
		case errors.Is(err, session.ErrAdmissionRejected) && errors.Is(err, core.ErrDeadlineExceeded):
			httpError(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, session.ErrAdmissionRejected):
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, core.ErrDeadlineExceeded):
			httpError(w, http.StatusGatewayTimeout, err)
		case errors.Is(err, core.ErrQueryCancelled):
			// Client went away: 499 in nginx convention; use 408.
			httpError(w, http.StatusRequestTimeout, err)
		default:
			httpError(w, http.StatusInternalServerError, err)
		}
		return
	}

	out := queryResponse{
		Query:    resp.Query,
		TPCH:     q,
		Rows:     resp.Table.NumRows(),
		QueuedMS: float64(resp.Queued) / float64(time.Millisecond),
		TotalMS:  float64(resp.Elapsed) / float64(time.Millisecond),
	}
	if limit > 0 {
		rows := engine.Rows(resp.Table)
		if len(rows) > limit {
			rows = rows[:limit]
		}
		for _, row := range rows {
			out.Sample = append(out.Sample, engine.FormatRow(row))
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	inflight, waiting, reserved := s.sess.Occupancy()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":       time.Since(s.start).Seconds(),
		"counters":       s.sess.Counters(),
		"inflight":       inflight,
		"queued":         waiting,
		"reserved_bytes": reserved,
		"live_bytes":     s.sess.Live(),
		"reuse":          s.sess.ReuseStats(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.tr.Snapshot().WritePrometheus(w); err != nil {
		log.Printf("metrics write: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("response write: %v", err)
	}
}
