// Command uotbench regenerates the paper's tables and figures.
//
// Usage:
//
//	uotbench [-sf 0.05] [-workers 20] [-runs 5] [-best 3] [-l3 8388608] [-adaptive] [IDs...]
//	uotbench -micro [-json BENCH_PR1.json]
//	uotbench -serve [-json BENCH_PR8.json]
//	uotbench -spill [-json BENCH_PR9.json]
//
// With no IDs, every experiment runs in paper order. IDs are the experiment
// identifiers from DESIGN.md (FIG2, FIG3, EQ1, SEC5C, TAB2, TAB3, TAB4,
// SEC6C, FIG5, FIG6, FIG7, FIG8, FIG9, FIG10, TAB6, FIG11, plus CONTEND for
// the batch-kernel contention profile, AGG for the aggregation-kernel
// profile, SORT for the parallel-sort/top-k kernel profile, CHAOS for the
// fault-injection robustness check — TPC-H under a seeded fault schedule
// must match the fault-free results exactly — ADAPT for the adaptive
// per-edge UoT controller vs. the static settings, SERVE for the concurrent
// multi-query serving check — admission control, load shedding, and
// bit-identical results under 16 concurrent clients — and CCHAOS for
// serving under concurrent fault injection).
//
// -adaptive turns the per-edge adaptive UoT controller on for the wall-clock
// experiments that execute real queries (FIG7, FIG8, FIG10, TAB6): their
// per-query runs then start at the analytical model's predicted UoT and
// adjust at delivery boundaries instead of using the experiment's static
// setting.
//
// -micro runs the hot-path micro-benchmark suite instead (row-at-a-time
// reference paths vs. the block-granular batch, aggregation, and
// normalized-key sort kernels) and, with -json, writes the machine-readable
// perf artifact that tracks kernel throughput across PRs (BENCH_PR1.json,
// BENCH_PR2.json).
//
// -serve runs the closed-loop serving sweep instead: 1, 4, and 16 clients
// submitting the TPC-H mix through a shared session, reporting throughput
// and latency percentiles (golden-checked against single-query results);
// with -json it writes the machine-readable artifact (BENCH_PR8.json).
//
// -spill runs the spill-threshold sweep instead: each mix query at an
// all-RAM baseline and then with resident temp bytes capped at ½, ¼, and ⅛
// of its unconstrained peak, reporting wall time and extent I/O at each
// point (every spilled result golden-checked bit-exactly); with -json it
// writes the machine-readable artifact (BENCH_PR9.json). The SPILL
// experiment ID runs the pass/fail variant instead.
//
// -trace out.json attaches an execution tracer to the experiments that
// support it (FIG2, FIG3) and writes the collected timeline as a Chrome
// trace-event file (open in chrome://tracing or Perfetto; the FIG2 sections
// visually render the paper's Fig. 2 interleaving-vs-blocking schedules).
// -metrics out.json and -prom out.txt write the aggregate metrics snapshot
// of the same tracer as JSON and Prometheus-style exposition text. Flags may
// appear before or after experiment IDs: `uotbench FIG2 -trace fig2.json`
// works.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/trace"
)

func main() {
	sf := flag.Float64("sf", 0.05, "TPC-H scale factor")
	workers := flag.Int("workers", 20, "worker threads (T)")
	runs := flag.Int("runs", 5, "wall-clock repetitions per configuration")
	best := flag.Int("best", 3, "average the best K runs")
	l3 := flag.Int64("l3", 8<<20, "simulated L3 bytes for the cache model")
	adaptive := flag.Bool("adaptive", false, "run wall-clock query experiments with the adaptive per-edge UoT controller")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	micro := flag.Bool("micro", false, "run the hot-path micro-benchmark suite instead of the experiments")
	serve := flag.Bool("serve", false, "run the closed-loop serving sweep (1/4/16 clients) instead of the experiments")
	spill := flag.Bool("spill", false, "run the spill-threshold sweep (RAM at 1, 1/2, 1/4, 1/8 of peak) instead of the experiments")
	reuseFlag := flag.Bool("reuse", false, "run the repeated-mix cross-query cache comparison (cache off vs on) instead of the experiments")
	jsonPath := flag.String("json", "", "with -micro, -serve, -spill, or -reuse: write the machine-readable results to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace-event timeline of the traced experiments (FIG2, FIG3) to this file")
	metricsPath := flag.String("metrics", "", "write the tracer's aggregate metrics snapshot as JSON to this file")
	promPath := flag.String("prom", "", "write the tracer's aggregate metrics snapshot as Prometheus text to this file")
	ids := parseInterleaved()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Paper)
		}
		return
	}

	if *serve {
		rep, err := bench.RunServe(bench.Config{SF: *sf, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if *jsonPath != "" {
			if err := rep.WriteJSON(*jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return
	}

	if *spill {
		rep, err := bench.RunSpill(bench.Config{SF: *sf, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if *jsonPath != "" {
			if err := rep.WriteJSON(*jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return
	}

	if *reuseFlag {
		rep, err := bench.RunReuse(bench.Config{SF: *sf, Workers: *workers})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.String())
		if *jsonPath != "" {
			if err := rep.WriteJSON(*jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return
	}

	if *micro {
		rep := bench.RunMicro()
		fmt.Print(rep.String())
		if *jsonPath != "" {
			if err := rep.WriteJSON(*jsonPath); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n", *jsonPath)
		}
		return
	}

	var tr *trace.Tracer
	if *tracePath != "" || *metricsPath != "" || *promPath != "" {
		tr = trace.New(0)
	}

	h := bench.New(bench.Config{
		SF: *sf, Workers: *workers, Runs: *runs, Best: *best, SimL3Bytes: *l3,
		Trace: tr, Adaptive: *adaptive,
	})

	exps := bench.Experiments()
	if len(ids) > 0 {
		exps = exps[:0]
		for _, id := range ids {
			e, err := bench.Find(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}

	cfg := h.Config()
	fmt.Printf("uotbench: SF=%.3g workers=%d runs=%d best=%d simL3=%dMiB\n\n",
		cfg.SF, cfg.Workers, cfg.Runs, cfg.Best, cfg.SimL3Bytes>>20)
	for _, e := range exps {
		start := time.Now()
		rep, err := e.Run(h)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println(rep.String())
		fmt.Printf("(%s regenerated %s in %v)\n\n", e.ID, e.Paper, time.Since(start).Round(time.Millisecond))
	}

	if *tracePath != "" {
		if err := tr.WriteChromeFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace (%d events) to %s\n", len(tr.Events()), *tracePath)
	}
	if *metricsPath != "" {
		if err := writeSnapshot(*metricsPath, tr.Snapshot().WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot (JSON) to %s\n", *metricsPath)
	}
	if *promPath != "" {
		if err := writeSnapshot(*promPath, tr.Snapshot().WritePrometheus); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot (Prometheus text) to %s\n", *promPath)
	}
}

// writeSnapshot streams one snapshot encoding to path.
func writeSnapshot(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseInterleaved parses os.Args allowing flags and positional experiment
// IDs to interleave (the flag package stops at the first positional
// argument, which would make `uotbench FIG2 -trace fig2.json` silently
// ignore -trace). It repeatedly parses, peels off leading positionals, and
// resumes parsing at the next flag.
func parseInterleaved() []string {
	flag.Parse()
	var ids []string
	rest := flag.Args()
	for len(rest) > 0 {
		i := 0
		for i < len(rest) && (!strings.HasPrefix(rest[i], "-") || rest[i] == "-" || rest[i] == "--") {
			ids = append(ids, rest[i])
			i++
		}
		if i == len(rest) {
			break
		}
		// flag.CommandLine uses ExitOnError: a bad flag exits with usage.
		flag.CommandLine.Parse(rest[i:])
		rest = flag.Args()
	}
	return ids
}
