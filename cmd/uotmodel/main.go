// Command uotmodel explores the paper's Section V analytical model from the
// command line: given a UoT size, thread count, and cache geometry it prints
// the Table I-derived costs, p1', the Eq. 1 ratio under both probability
// regimes, and the persistent-store variant.
//
//	uotmodel -B 131072 -T 20 -l3 26214400
//	uotmodel -sweep            # the Eq. 1 sweep used by the EQ1 experiment
package main

import (
	"flag"
	"fmt"

	"repro/internal/costmodel"
)

func main() {
	B := flag.Int64("B", 128<<10, "UoT size in bytes")
	T := flag.Int("T", 20, "threads")
	l3 := flag.Int64("l3", 25<<20, "L3 bytes")
	n := flag.Int64("n", 1000, "number of probe-input UoTs")
	sweep := flag.Bool("sweep", false, "print the full Eq. 1 sweep")
	flag.Parse()

	if *sweep {
		fmt.Printf("%-8s %-4s %-7s %-12s %-12s\n", "B", "T", "p1'", "ratio(high)", "ratio(low)")
		for _, b := range []int64{64 << 10, 128 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20} {
			for _, t := range []int{1, 5, 10, 20, 40} {
				p := costmodel.Default(b, t)
				p.L3Bytes = *l3
				fmt.Printf("%-8s %-4d %-7.3f %-12.2f %-12.2f\n",
					human(b), t, p.P1Prime(), p.HighRegime().Ratio(), p.LowRegime().Ratio())
			}
		}
		return
	}

	p := costmodel.Default(*B, *T)
	p.L3Bytes = *l3
	p.NProbeIn = *n

	fmt.Printf("model parameters (Table I):\n")
	fmt.Printf("  B = %s, T = %d, |L3| = %s, N_probe_in = %d\n", human(*B), *T, human(*l3), *n)
	fmt.Printf("  per-UoT costs: R_L3 = %.1f us, AR_L3 = %.1f us, W_mem = %.1f us, M_L3 = %d ns, IC = %d ns\n",
		p.RL3()/1000, p.ARL3()/1000, p.WMem()/1000, p.ML3, p.IC)
	fmt.Printf("  p1' = min(1, 2BT/|L3|) = %.3f\n\n", p.P1Prime())

	hi, lo := p.HighRegime(), p.LowRegime()
	fmt.Printf("extra work of the two strategies (ms across all UoTs):\n")
	fmt.Printf("  high-UoT (non-pipelining): %.3f\n", hi.HighUoTExtra()/1e6)
	fmt.Printf("  low-UoT  (pipelining):     %.3f\n", lo.LowUoTExtra()/1e6)
	fmt.Printf("Eq. 1 ratio: %.2f (high regime), %.2f (low regime) — near 1 means the strategies tie\n\n",
		hi.Ratio(), lo.Ratio())

	s := costmodel.DefaultStore(*n)
	fmt.Printf("persistent-store setting (Section V-C):\n")
	fmt.Printf("  high-UoT extra: %.1f ms | low-UoT extra: %.3f ms | pipelining advantage: %.0fx\n",
		s.HighUoTExtra()/1e6, s.LowUoTExtra()/1e6, s.Advantage())
}

func human(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	}
	return fmt.Sprintf("%dB", b)
}
