package uot

// Benchmarks, one per table and figure of the paper (run with
// `go test -bench=. -benchmem`). Each benchmark regenerates its paper
// artifact through the internal/bench harness at a reduced scale factor so
// the whole suite completes in minutes; cmd/uotbench runs the same
// experiments at the full configured scale. Micro-benchmarks for the core
// data structures follow the experiment benchmarks.

import (
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/bloom"
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hashtable"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/types"
)

var (
	harnessOnce sync.Once
	harness     *bench.Harness
)

// benchHarness shares one dataset cache across all experiment benchmarks.
func benchHarness() *bench.Harness {
	harnessOnce.Do(func() {
		harness = bench.New(bench.Config{SF: 0.01, Workers: 20, Runs: 2, Best: 1})
	})
	return harness
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	h := benchHarness()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(h)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Experiment benchmarks, in paper order.

func BenchmarkFig2Schedules(b *testing.B)         { runExperiment(b, "FIG2") }
func BenchmarkFig3OperatorBreakdown(b *testing.B) { runExperiment(b, "FIG3") }
func BenchmarkEq1Ratio(b *testing.B)              { runExperiment(b, "EQ1") }
func BenchmarkSec5CPersistentStore(b *testing.B)  { runExperiment(b, "SEC5C") }
func BenchmarkTab2MemoryFootprint(b *testing.B)   { runExperiment(b, "TAB2") }
func BenchmarkTab3Lineitem(b *testing.B)          { runExperiment(b, "TAB3") }
func BenchmarkTab4Orders(b *testing.B)            { runExperiment(b, "TAB4") }
func BenchmarkSec6CLIP(b *testing.B)              { runExperiment(b, "SEC6C") }
func BenchmarkFig5ProbeTasks(b *testing.B)        { runExperiment(b, "FIG5") }
func BenchmarkFig6Chains(b *testing.B)            { runExperiment(b, "FIG6") }
func BenchmarkFig7QueryTimes(b *testing.B)        { runExperiment(b, "FIG7") }
func BenchmarkFig8RowStore(b *testing.B)          { runExperiment(b, "FIG8") }
func BenchmarkFig9Scalability(b *testing.B)       { runExperiment(b, "FIG9") }
func BenchmarkFig10Interaction(b *testing.B)      { runExperiment(b, "FIG10") }
func BenchmarkTab6Prefetching(b *testing.B)       { runExperiment(b, "TAB6") }
func BenchmarkFig11Monet(b *testing.B)            { runExperiment(b, "FIG11") }
func BenchmarkSec6BSSB(b *testing.B)              { runExperiment(b, "SEC6B") }
func BenchmarkAblationUoTSweep(b *testing.B)      { runExperiment(b, "ABL-UOT") }
func BenchmarkAblationBlockSize(b *testing.B)     { runExperiment(b, "ABL-BLOCK") }

// Micro-benchmarks for the substrates.

func BenchmarkBlockScanColumnStore(b *testing.B) { benchBlockScan(b, storage.ColumnStore) }
func BenchmarkBlockScanRowStore(b *testing.B)    { benchBlockScan(b, storage.RowStore) }

func benchBlockScan(b *testing.B, format storage.Format) {
	s := storage.NewSchema(
		storage.Column{Name: "k", Type: types.Int64},
		storage.Column{Name: "v", Type: types.Float64},
		storage.Column{Name: "pad", Type: types.Char, Width: 64},
	)
	blk := storage.NewBlock(s, format, 128<<10)
	for !blk.Full() {
		blk.AppendRow(types.NewInt64(1), types.NewFloat64(2), types.NewString("x"))
	}
	b.SetBytes(int64(blk.NumRows() * 8))
	b.ResetTimer()
	var sum int64
	for i := 0; i < b.N; i++ {
		for r := 0; r < blk.NumRows(); r++ {
			sum += blk.Int64At(0, r)
		}
	}
	_ = sum
}

func BenchmarkHashTableInsert(b *testing.B) {
	pay := storage.NewSchema(storage.Column{Name: "v", Type: types.Int64})
	src := storage.NewBlock(pay, storage.RowStore, 1024)
	src.AppendRow(types.NewInt64(7))
	ht := hashtable.New(hashtable.Config{PayloadSchema: pay, InitialCapacity: b.N})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Insert(int64(i), 0, src, 0, []int{0})
	}
}

func BenchmarkHashTableLookup(b *testing.B) {
	pay := storage.NewSchema(storage.Column{Name: "v", Type: types.Int64})
	src := storage.NewBlock(pay, storage.RowStore, 1024)
	src.AppendRow(types.NewInt64(7))
	const n = 1 << 16
	ht := hashtable.New(hashtable.Config{PayloadSchema: pay, InitialCapacity: n})
	for i := 0; i < n; i++ {
		ht.Insert(int64(i), 0, src, 0, []int{0})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ht.Lookup(int64(i%n), 0, func(*storage.Block, int) bool { return true })
	}
}

func BenchmarkBloomFilter(b *testing.B) {
	f := bloom.New(1<<16, 10)
	for i := int64(0); i < 1<<16; i++ {
		f.Add(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(int64(i))
	}
}

func BenchmarkCacheSimProbes(b *testing.B) {
	s := cachesim.New(cachesim.Default())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RandomProbes(1000, 100<<20)
	}
}

// BenchmarkQ3EndToEnd measures one full TPC-H query per iteration at both
// UoT extremes (the headline comparison of the paper).
func BenchmarkQ3EndToEndLowUoT(b *testing.B)  { benchQ3(b, 1) }
func BenchmarkQ3EndToEndHighUoT(b *testing.B) { benchQ3(b, core.UoTTable) }

var (
	q3Once sync.Once
	q3Data *tpch.Dataset
)

func benchQ3(b *testing.B, uotBlocks int) {
	q3Once.Do(func() { q3Data = tpch.Load(0.01, 128<<10, storage.ColumnStore) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := tpch.Build(q3Data, 3, tpch.QueryOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engine.Execute(plan, engine.Options{
			Workers: 4, UoTBlocks: uotBlocks, TempBlockBytes: 128 << 10,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
