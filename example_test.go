package uot_test

import (
	"fmt"

	uot "repro"
)

// Example builds a two-table join-aggregate plan and runs it at both ends of
// the UoT spectrum; the results are identical — only the transfer schedule
// and the memory profile differ.
func Example() {
	db := uot.NewDB(4<<10, uot.ColumnStore)
	items := db.CreateTable("items", uot.NewSchema(
		uot.Column{Name: "cat", Type: uot.TInt64},
		uot.Column{Name: "price", Type: uot.TFloat64},
	))
	l := uot.NewLoader(items)
	for i := 0; i < 100; i++ {
		l.Append(uot.Int64Val(int64(i%2)), uot.Float64Val(float64(i)))
	}
	l.Close()

	build := func() *uot.Builder {
		b := uot.NewBuilder()
		s := items.Schema()
		sel := b.ScanSelect(uot.SelectSpec{
			Name: "scan", Base: items,
			Pred:      uot.Ge(uot.Col(s, "price"), uot.Float(50)),
			Proj:      []uot.Expr{uot.Col(s, "cat"), uot.Col(s, "price")},
			ProjNames: []string{"cat", "price"},
		})
		agg := b.Agg(sel, uot.AggOpSpec{
			Name:         "agg",
			GroupBy:      []uot.Expr{uot.Col(sel.Schema, "cat")},
			GroupByNames: []string{"cat"},
			Aggs:         []uot.AggSpec{{Func: uot.Sum, Arg: uot.Col(sel.Schema, "price"), Name: "total"}},
		})
		srt := b.Sort(agg, uot.SortSpec{Name: "sort", Terms: []uot.SortTerm{{Key: uot.Col(agg.Schema, "cat")}}})
		b.Collect(srt)
		return b
	}

	for _, u := range []int{1, uot.UoTTable} {
		res, err := uot.Execute(build(), uot.Options{Workers: 2, UoTBlocks: u})
		if err != nil {
			panic(err)
		}
		for _, row := range uot.Rows(res.Table) {
			fmt.Printf("cat=%d total=%.0f\n", row[0].I, row[1].F)
		}
	}
	// Output:
	// cat=0 total=1850
	// cat=1 total=1875
	// cat=0 total=1850
	// cat=1 total=1875
}
