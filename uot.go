// Package uot is a reproduction of "On inter-operator data transfers in
// query processing" (Deshmukh, Sundarmurthy, Patel — ICDE 2022): an
// in-memory, block-based analytic query engine in which the unit of
// transfer (UoT) between producer and consumer operators is an explicit,
// tunable parameter, together with the paper's analytical cost model, memory
// model, cache-hierarchy simulator, TPC-H substrate, and a MonetDB-style
// operator-at-a-time baseline.
//
// The central idea: "pipelining" and "blocking" are not two different
// architectures but the two ends of one spectrum. Every pipelined edge in a
// plan carries blocks from producer to consumer in groups of UoT blocks;
// UoT = 1 block is what the literature calls pipelining, UoT = the whole
// intermediate table is blocking, and everything in between is a valid
// operating point:
//
//	db := uot.NewDB(128<<10, uot.ColumnStore)
//	// ... create and load tables ...
//	b := uot.NewBuilder()
//	// ... wire select/build/probe/agg/sort operators ...
//	res, err := uot.Execute(b, uot.Options{Workers: 8, UoTBlocks: 1})
//	res2, err := uot.Execute(b2, uot.Options{Workers: 8, UoTBlocks: uot.UoTTable})
//
// For the TPC-H workloads, the experiments of the paper, and the analytical
// models, see the runnable examples under examples/, the experiment runners
// in internal/bench (driven by cmd/uotbench), and DESIGN.md / EXPERIMENTS.md.
package uot

import (
	"repro/internal/cachesim"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/faults"
	"repro/internal/memmodel"
	"repro/internal/monet"
	"repro/internal/reuse"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/tpch"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/uotctl"
)

// UoTTable is the UoT value meaning "the whole intermediate table" — the
// classic blocking strategy.
const UoTTable = core.UoTTable

// Storage formats for base tables and temporaries.
const (
	RowStore    = storage.RowStore
	ColumnStore = storage.ColumnStore
)

// Column types.
const (
	TInt64   = types.Int64
	TFloat64 = types.Float64
	TDate    = types.Date
	TChar    = types.Char
)

// Core engine types.
type (
	// DB holds the catalog and physical settings of base tables.
	DB = engine.DB
	// Builder wires operators into an executable plan.
	Builder = engine.Builder
	// Node is a handle to a plan operator.
	Node = engine.Node
	// Options selects workers (T), the default UoT, temporary block size
	// and format, and an optional cache simulator.
	Options = engine.Options
	// Result is a finished execution: the result table plus run statistics
	// (per-work-order timings, memory high-water marks).
	Result = engine.Result
	// Schema describes a relation's columns.
	Schema = storage.Schema
	// Column is one schema attribute.
	Column = storage.Column
	// Table is a list of fixed-size storage blocks.
	Table = storage.Table
	// Loader bulk-appends rows to a table.
	Loader = storage.Loader
	// Datum is a single typed value.
	Datum = types.Datum
	// Expr is a scalar expression over block rows.
	Expr = expr.Expr
)

// Datum constructors.
var (
	Int64Val   = types.NewInt64
	Float64Val = types.NewFloat64
	DateVal    = types.NewDate
	StringVal  = types.NewString
)

// NewLoader returns a bulk loader for t.
func NewLoader(t *Table) *Loader { return storage.NewLoader(t) }

// Operator specs (see package repro/internal/exec for field documentation).
type (
	SelectSpec = exec.SelectSpec
	BuildSpec  = exec.BuildSpec
	ProbeSpec  = exec.ProbeSpec
	AggOpSpec  = exec.AggOpSpec
	AggSpec    = exec.AggSpec
	SortSpec   = exec.SortSpec
	SortTerm   = exec.SortTerm
	JoinType   = exec.JoinType
)

// Join types and aggregate functions.
const (
	Inner     = exec.Inner
	LeftOuter = exec.LeftOuter
	LeftSemi  = exec.LeftSemi
	LeftAnti  = exec.LeftAnti

	Sum   = exec.Sum
	Count = exec.Count
	Avg   = exec.Avg
	Min   = exec.Min
	Max   = exec.Max
)

// NewDB returns an empty database whose base tables use the given block size
// and format (Table V of the paper uses 128 KB, 512 KB, and 2 MB blocks).
func NewDB(blockBytes int, format storage.Format) *DB {
	return engine.NewDB(blockBytes, format)
}

// NewBuilder returns an empty plan builder.
func NewBuilder() *Builder { return engine.NewBuilder() }

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return storage.NewSchema(cols...) }

// Execute runs a built plan.
func Execute(b *Builder, opts Options) (*Result, error) { return engine.Execute(b, opts) }

// ExecuteMonetStyle runs a built plan on the MonetDB-style operator-at-a-time
// baseline (Fig. 11's comparator).
func ExecuteMonetStyle(b *Builder, workers int) (*Result, error) {
	return monet.Execute(b, monet.Options{Workers: workers})
}

// Rows materializes a result table as datum rows.
var Rows = engine.Rows

// Fault-injection support (chaos testing): a deterministic, seeded injector
// wired into Options.Faults fires errors, panics, latency, and allocation
// failures at named execution sites; the scheduler rolls back and retries
// transient failures, and operators degrade to their reference paths.
type (
	// FaultInjector decides, purely from (seed, site, sequence number),
	// whether each consultation fires.
	FaultInjector = faults.Injector
	// FaultConfig configures an injector: seed, global and per-site rates,
	// fault kinds, and the maximum injected latency.
	FaultConfig = faults.Config
	// FaultSite names an injection point (hash insert, bloom build, agg
	// upsert, block materialize, sort run, repartition).
	FaultSite = faults.Site
	// FaultEvent is one fired fault in a replayable schedule.
	FaultEvent = faults.Event
)

// NewFaultInjector returns an injector for cfg.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faults.New(cfg) }

// Execution observability: a Tracer wired into Options.Trace records
// per-work-order spans, per-edge queue gauges, and scheduler annotations
// into a fixed ring buffer with zero overhead when nil. Export the timeline
// as Chrome trace-event JSON (WriteChromeTrace renders the Fig. 2 schedule
// shapes in chrome://tracing / Perfetto) or snapshot aggregate metrics as
// JSON / Prometheus-style text.
type (
	// Tracer is the ring-buffer event sink; nil means tracing disabled.
	Tracer = trace.Tracer
	// TraceEvent is one fixed-width recorded event.
	TraceEvent = trace.Event
	// TraceMetrics is an aggregate metrics snapshot (JSON / Prometheus).
	TraceMetrics = trace.Metrics
)

// NewTracer returns a tracer retaining up to capacity events
// (trace.DefaultCapacity if capacity <= 0):
//
//	tr := uot.NewTracer(0)
//	res, err := uot.Execute(b, uot.Options{Workers: 8, UoTBlocks: 2, Trace: tr, TraceLabel: "uot=2"})
//	tr.WriteChromeFile("trace.json")        // timeline for chrome://tracing
//	tr.Snapshot().WritePrometheus(os.Stdout) // metrics scrape text
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// Adaptive unit-of-transfer control: setting Options.AdaptiveUoT attaches a
// per-edge controller (see internal/uotctl) that seeds undeclared edges with
// the Section V analytical model's predicted operating point and then
// adjusts each pipelined edge's UoT AIMD-style at delivery boundaries from
// backlog, stall-time, and consumer service-time gauges — with hysteresis,
// cooldown, and floor/ceiling clamps. The memory-pressure degradation raise
// routes through the same controller, so pressure and feedback decisions
// compose instead of fighting:
//
//	res, err := uot.Execute(b, uot.Options{Workers: 8, AdaptiveUoT: true})
//	for _, e := range res.Run.EdgeUoTs() { ... } // per-edge UoT trajectory
type (
	// AdaptiveConfig tunes the adaptive controller (Options.AdaptiveConfig);
	// the zero value inherits the run's workers/block-size/default-UoT and
	// the controller defaults.
	AdaptiveConfig = uotctl.Config
	// EdgeUoT is one pipelined edge's recorded UoT trajectory: declared and
	// resolved starting values, final value, and per-decision counts.
	EdgeUoT = stats.EdgeUoT
)

// TPCH is a loaded TPC-H dataset.
type TPCH = tpch.Dataset

// LoadTPCH generates the eight TPC-H tables at the given scale factor.
func LoadTPCH(sf float64, blockBytes int, format storage.Format) *TPCH {
	return tpch.Load(sf, blockBytes, format)
}

// TPCHQueries returns the implemented TPC-H query numbers.
func TPCHQueries() []int { return tpch.Numbers() }

// BuildTPCH constructs the plan for a TPC-H query; set lip to enable
// lookahead-information-passing bloom filters.
func BuildTPCH(d *TPCH, query int, lip bool) (*Builder, error) {
	return tpch.Build(d, query, tpch.QueryOpts{LIP: lip})
}

// TPCHOpts tunes TPC-H plan construction.
type TPCHOpts = tpch.QueryOpts

// BuildTPCHWith constructs the plan for a TPC-H query with full options
// (LIP filters, staged one-join-at-a-time execution).
func BuildTPCHWith(d *TPCH, query int, opts TPCHOpts) (*Builder, error) {
	return tpch.Build(d, query, opts)
}

// CacheSim is the deterministic memory-hierarchy model (Section V costs:
// residency, prefetching, bandwidth contention).
type CacheSim = cachesim.Sim

// NewCacheSim returns a simulator with the default Haswell-like parameters.
func NewCacheSim() *CacheSim { return cachesim.New(cachesim.Default()) }

// CostModel is the Section V analytical model (Table I parameters, Eq. 1
// ratio, persistent-store variant).
type CostModel = costmodel.Params

// NewCostModel returns default model parameters for UoT size B bytes and T
// threads.
func NewCostModel(B int64, T int) CostModel { return costmodel.Default(B, T) }

// Memory-model helpers (Section VI).
var (
	// HashTableSize is the (M/w)·(c/f) model.
	HashTableSize = memmodel.HashTableSize
	// LowUoTOverhead is Σ|H_i| for i ≥ 2 (Table II).
	LowUoTOverhead = memmodel.LowUoTOverhead
	// HighUoTOverhead is |σ(R)| (Table II).
	HighUoTOverhead = memmodel.HighUoTOverhead
)

// Expression constructors, re-exported for plan building.
var (
	Col      = expr.C
	BuildCol = expr.C2
	Const    = expr.Const
	Int      = expr.Int
	Float    = expr.Float
	Str      = expr.Str
	Date     = expr.Date
	Eq       = expr.Eq
	Ne       = expr.Ne
	Lt       = expr.Lt
	Le       = expr.Le
	Gt       = expr.Gt
	Ge       = expr.Ge
	Between  = expr.Between
	And      = expr.And
	Or       = expr.Or
	Not      = expr.Not
	AddE     = expr.AddE
	SubE     = expr.SubE
	MulE     = expr.MulE
	DivE     = expr.DivE
	Year     = expr.Year
	Substr   = expr.Substr
	Like     = expr.Like
	NotLike  = expr.NotLike
	In       = expr.In
	Param    = expr.Param
)

// Concurrent multi-query serving (see internal/session): a Session shares
// one worker pool and one temporary-block pool across N concurrent queries,
// gated by an admission controller that arbitrates a global memory budget —
// queries beyond capacity wait in a bounded priority queue or are shed with
// typed errors:
//
//	s := uot.OpenSession(uot.SessionConfig{Workers: 8, MemoryBudget: 1 << 30})
//	defer s.Close()
//	resp, err := s.Submit(uot.Request{Build: func() *uot.Builder { ... }})
//	if errors.Is(err, uot.ErrAdmissionRejected) { /* shed: back off */ }
type (
	// Session serves concurrent queries with admission control and
	// per-query isolation.
	Session = session.Session
	// SessionConfig sizes a session: worker pool, concurrency cap, queue
	// depth, global memory budget.
	SessionConfig = session.Config
	// Request is one query submission (plan constructor, priority,
	// deadline, optional context and fault injector).
	Request = session.Request
	// Response is a completed query: result table, run statistics, queue
	// wait and total latency.
	Response = session.Response
	// ServeCounters snapshots a session's admission/shed/completion
	// statistics.
	ServeCounters = session.Counters
)

// OpenSession starts a serving session.
func OpenSession(cfg SessionConfig) *Session { return session.Open(cfg) }

// Cross-query result reuse (see internal/reuse): a ReuseCache keys
// materialized subplan results by canonical plan fingerprints, so repeated
// or overlapping queries splice a scan of the cached block set in place of
// recomputing the subtree. Attach one to a session with
// SessionConfig{Reuse: true} or to a standalone execution via
// engine.Options.Reuse.
type (
	// ReuseCache is the benefit-ranked cross-query result cache.
	ReuseCache = reuse.Cache
	// ReuseConfig sizes a cache: RAM budget, per-entry cap, optional
	// cool-to-disk tier.
	ReuseConfig = reuse.Config
	// ReuseCounters snapshots hits, misses, admissions, evictions, and
	// occupancy.
	ReuseCounters = reuse.Counters
	// Fingerprint identifies a subplan's canonical encoding.
	Fingerprint = reuse.Fingerprint
)

// NewReuseCache builds a standalone result cache (sessions build their own
// from SessionConfig).
func NewReuseCache(cfg ReuseConfig) *ReuseCache { return reuse.New(cfg) }

// Typed serving and robustness errors, matched with errors.Is.
var (
	// ErrAdmissionRejected: the session shed the query without running it
	// (queue full, deadline already blown, or estimate over the global
	// budget).
	ErrAdmissionRejected = session.ErrAdmissionRejected
	// ErrSessionClosed: Submit against a closed session.
	ErrSessionClosed = session.ErrSessionClosed
	// ErrQueryCancelled: the query's context was cancelled (queued or
	// running); the error chain also matches context.Canceled.
	ErrQueryCancelled = core.ErrQueryCancelled
	// ErrDeadlineExceeded: a deadline expired — before admission (also
	// matches ErrAdmissionRejected) or mid-run.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
	// ErrMemoryBudget: a memory-budget rejection (also matches
	// ErrAdmissionRejected).
	ErrMemoryBudget = core.ErrMemoryBudget
)
